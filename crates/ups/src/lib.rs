//! UPS battery models for Data Center Sprinting.
//!
//! Phase 2 of the paper's methodology discharges the UPS batteries that data
//! centers already deploy for outage ride-through, using them instead to
//! carry part of the server load so that PDU-level circuit breakers stop
//! being overloaded. The paper assumes *distributed* (per-server) UPS
//! batteries, coordinated so that a chosen number of servers draw from their
//! batteries while the rest stay on the PDU — the knob that shapes the
//! PDU-level power curve in Fig. 4(b).
//!
//! This crate provides:
//!
//! * [`Chemistry`] — lead-acid vs. LiFePO₄ parameters (nominal voltage,
//!   tolerated full discharges per month, required service life);
//! * [`Battery`] — a single battery with state of charge, discharge/recharge
//!   with efficiency, a depth-of-discharge floor, and throughput-based cycle
//!   accounting;
//! * [`UpsFleet`] — the per-server fleet, which offloads whole servers onto
//!   battery and aggregates the remaining energy and runtime.
//!
//! # Examples
//!
//! ```
//! use dcs_ups::{Battery, Chemistry};
//! use dcs_units::{Charge, Power, Seconds};
//!
//! // The paper's default: 0.5 Ah per server, ~6 minutes at 55 W.
//! let mut b = Battery::new(Chemistry::LithiumIronPhosphate, Charge::from_amp_hours(0.5));
//! let runtime = b.runtime_at(Power::from_watts(55.0));
//! assert!(runtime.as_minutes() > 5.0 && runtime.as_minutes() < 7.0);
//!
//! let delivered = b.discharge(Power::from_watts(55.0), Seconds::from_minutes(1.0));
//! assert_eq!(delivered.as_watts(), 55.0);
//! assert!(b.state_of_charge().as_f64() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod battery;
mod chemistry;
mod fleet;

pub use battery::Battery;
pub use chemistry::Chemistry;
pub use fleet::{FleetStatus, UpsFleet};
