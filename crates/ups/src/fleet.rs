//! Coordinated per-server UPS fleet.

use crate::{Battery, Chemistry};
use dcs_units::{Energy, Power, Ratio, Seconds};
use serde::{Deserialize, Serialize};

/// A snapshot of fleet state, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetStatus {
    /// Number of UPS units (servers) in the fleet.
    pub units: usize,
    /// Number of servers currently drawing from battery.
    pub on_battery: usize,
    /// Aggregate state of charge.
    pub state_of_charge: Ratio,
    /// Aggregate energy still deliverable to loads.
    pub deliverable: Energy,
}

/// A fleet of identical per-server UPS batteries under coordinated control.
///
/// Following Kontorinis et al. \[18\] (the deployment the paper assumes), each
/// server has its own small battery, and the coordinator chooses *how many
/// servers* draw from battery at any moment. Offloading a server removes its
/// entire draw from the PDU, so the fleet's offload granularity is one
/// server's power.
///
/// Internally the fleet tracks an aggregate battery; the coordinator is
/// assumed to rotate which physical servers discharge so that wear spreads
/// evenly (the same assumption \[18\] makes), which makes the aggregate model
/// exact for energy purposes.
///
/// # Examples
///
/// ```
/// use dcs_ups::{Chemistry, UpsFleet};
/// use dcs_units::{Charge, Power, Seconds};
///
/// let mut fleet = UpsFleet::new(200, Chemistry::LithiumIronPhosphate, Charge::from_amp_hours(0.5));
/// // Offload 1 kW of PDU overload at 55 W per server -> 19 servers on battery.
/// let off = fleet.offload(Power::from_kilowatts(1.0), Power::from_watts(55.0), Seconds::new(1.0));
/// assert!(off.as_watts() >= 1000.0);
/// assert_eq!(fleet.status().on_battery, 19);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpsFleet {
    aggregate: Battery,
    units: usize,
    on_battery: usize,
    /// Fault injection: fraction of strings online, in `[0, 1]`.
    available_fraction: f64,
    /// Fault injection: capacity-fade factor on surviving strings, `(0, 1]`.
    capacity_factor: f64,
}

impl UpsFleet {
    /// Creates a fleet of `units` fully charged batteries of the given
    /// per-unit amp-hour rating.
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero or the rating is zero.
    #[must_use]
    pub fn new(units: usize, chemistry: Chemistry, per_unit: dcs_units::Charge) -> UpsFleet {
        assert!(units > 0, "fleet must have at least one unit");
        let each = per_unit.energy_at_volts(chemistry.nominal_volts());
        assert!(each > Energy::ZERO, "battery rating must be positive");
        UpsFleet {
            aggregate: Battery::from_energy(chemistry, each * units as f64),
            units,
            on_battery: 0,
            available_fraction: 1.0,
            capacity_factor: 1.0,
        }
    }

    /// Sets the fault-injection derates: `available_fraction` of the
    /// strings are online (shrinking both the offload headcount and the
    /// accessible energy), and the survivors deliver `capacity_factor` of
    /// their energy. `(1.0, 1.0)` restores nominal behavior exactly.
    ///
    /// # Panics
    ///
    /// Panics if `available_fraction` is outside `[0, 1]` or
    /// `capacity_factor` is outside `(0, 1]`.
    pub fn set_derating(&mut self, available_fraction: f64, capacity_factor: f64) {
        assert!(
            (0.0..=1.0).contains(&available_fraction),
            "available fraction must be in [0, 1]"
        );
        assert!(
            capacity_factor > 0.0 && capacity_factor <= 1.0,
            "capacity factor must be in (0, 1]"
        );
        self.available_fraction = available_fraction;
        self.capacity_factor = capacity_factor;
    }

    /// Returns the fault-injection derates
    /// `(available_fraction, capacity_factor)`.
    #[must_use]
    pub fn derating(&self) -> (f64, f64) {
        (self.available_fraction, self.capacity_factor)
    }

    /// The combined usable-energy factor the derates impose.
    fn usable_factor(&self) -> f64 {
        self.available_fraction * self.capacity_factor
    }

    /// Energy stranded by the derates: offline strings and faded cells
    /// hold charge the coordinator cannot reach until the fault clears.
    fn stranded(&self) -> Energy {
        let full = self.aggregate.capacity()
            * self.aggregate.chemistry().max_depth_of_discharge()
            * self.aggregate.chemistry().discharge_efficiency();
        full * (1.0 - self.usable_factor())
    }

    /// Returns the number of UPS units.
    #[must_use]
    pub fn units(&self) -> usize {
        self.units
    }

    /// Returns the aggregate energy still deliverable (derated by any
    /// injected string-failure or capacity-fade faults).
    #[must_use]
    pub fn deliverable(&self) -> Energy {
        (self.aggregate.deliverable() - self.stranded()).max_zero()
    }

    /// Returns the aggregate state of charge.
    #[must_use]
    pub fn state_of_charge(&self) -> Ratio {
        self.aggregate.state_of_charge()
    }

    /// Returns how long the fleet can sustain an offload of `power`.
    #[must_use]
    pub fn runtime_at(&self, power: Power) -> Seconds {
        if power <= Power::ZERO {
            return Seconds::NEVER;
        }
        self.deliverable() / power
    }

    /// Offloads at least `requested` power onto batteries for `dt`, in
    /// whole-server increments of `per_server`, limited by fleet size and
    /// stored energy. Returns the power actually removed from the PDUs.
    ///
    /// The returned power can exceed `requested` by up to one server's
    /// draw (offloading is whole-server), or fall short when energy runs
    /// out mid-interval.
    ///
    /// # Panics
    ///
    /// Panics if `per_server` is not strictly positive, `requested` is
    /// negative, or `dt` is not strictly positive and finite.
    pub fn offload(&mut self, requested: Power, per_server: Power, dt: Seconds) -> Power {
        assert!(
            per_server > Power::ZERO,
            "per-server power must be positive"
        );
        assert!(
            requested >= Power::ZERO,
            "requested power must be non-negative"
        );
        if requested.is_zero() {
            self.on_battery = 0;
            return Power::ZERO;
        }
        let online = (self.units as f64 * self.available_fraction).floor() as usize;
        let servers = ((requested.as_watts() / per_server.as_watts()).ceil() as usize).min(online);
        let mut want = per_server * servers as f64;
        if self.usable_factor() < 1.0 {
            // Derated strings cap the accessible energy below what the
            // aggregate battery still physically holds.
            want = want.min(self.deliverable() / dt);
        }
        let got = self.aggregate.discharge(want, dt);
        // Report how many servers were actually carried (floor: a partially
        // carried server still draws the remainder from the PDU).
        self.on_battery = (got.as_watts() / per_server.as_watts()).floor() as usize;
        got
    }

    /// Recharges the fleet with `power` for `dt`, returning the power
    /// actually accepted.
    ///
    /// # Panics
    ///
    /// Panics if `power` is negative or `dt` is not strictly positive and
    /// finite.
    pub fn recharge(&mut self, power: Power, dt: Seconds) -> Power {
        self.on_battery = 0;
        self.aggregate.recharge(power, dt)
    }

    /// Returns a telemetry snapshot.
    #[must_use]
    pub fn status(&self) -> FleetStatus {
        FleetStatus {
            units: self.units,
            on_battery: self.on_battery,
            state_of_charge: self.state_of_charge(),
            deliverable: self.deliverable(),
        }
    }

    /// Returns the fraction of fleet capacity discharged so far (the
    /// quantity the paper checks against the \[18\] lifetime rule — e.g. the
    /// MS-trace month discharges 26 % per burst on average).
    #[must_use]
    pub fn discharged_fraction(&self) -> Ratio {
        Ratio::new(1.0 - self.aggregate.state_of_charge().as_f64())
    }
}

impl std::fmt::Display for UpsFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "UPS fleet of {} units, {} on battery, SoC {}",
            self.units,
            self.on_battery,
            self.state_of_charge()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_units::Charge;

    fn fleet(n: usize) -> UpsFleet {
        UpsFleet::new(
            n,
            Chemistry::LithiumIronPhosphate,
            Charge::from_amp_hours(0.5),
        )
    }

    #[test]
    fn offload_rounds_up_to_whole_servers() {
        let mut f = fleet(200);
        let got = f.offload(
            Power::from_watts(100.0),
            Power::from_watts(55.0),
            Seconds::new(1.0),
        );
        // ceil(100/55) = 2 servers -> 110 W.
        assert!((got.as_watts() - 110.0).abs() < 1e-9);
        assert_eq!(f.status().on_battery, 2);
    }

    #[test]
    fn offload_caps_at_fleet_size() {
        let mut f = fleet(10);
        let got = f.offload(
            Power::from_kilowatts(100.0),
            Power::from_watts(55.0),
            Seconds::new(1.0),
        );
        assert!((got.as_watts() - 550.0).abs() < 1e-9);
        assert_eq!(f.status().on_battery, 10);
    }

    #[test]
    fn energy_depletes_and_offload_stops() {
        let mut f = fleet(2);
        // Drain: 2 servers x 55 W for well over the ~6 min runtime.
        let mut last = Power::ZERO;
        for _ in 0..1200 {
            last = f.offload(
                Power::from_watts(110.0),
                Power::from_watts(55.0),
                Seconds::new(1.0),
            );
        }
        assert!(last.is_zero());
        assert!(f.deliverable().is_zero());
    }

    #[test]
    fn runtime_matches_paper_scale() {
        let f = fleet(200);
        // Whole fleet carrying all 200 servers at 55 W: ~6 minutes.
        let t = f.runtime_at(Power::from_watts(55.0) * 200.0);
        assert!(t.as_minutes() > 5.0 && t.as_minutes() < 7.5);
    }

    #[test]
    fn recharge_restores_capacity() {
        let mut f = fleet(4);
        f.offload(
            Power::from_watts(220.0),
            Power::from_watts(55.0),
            Seconds::from_minutes(2.0),
        );
        let before = f.state_of_charge();
        f.recharge(Power::from_watts(500.0), Seconds::from_minutes(10.0));
        assert!(f.state_of_charge() > before);
        assert_eq!(f.status().on_battery, 0);
    }

    #[test]
    fn zero_request_clears_on_battery() {
        let mut f = fleet(4);
        f.offload(
            Power::from_watts(110.0),
            Power::from_watts(55.0),
            Seconds::new(1.0),
        );
        assert_eq!(f.status().on_battery, 2);
        f.offload(Power::ZERO, Power::from_watts(55.0), Seconds::new(1.0));
        assert_eq!(f.status().on_battery, 0);
    }

    #[test]
    fn string_failure_derates_headcount_and_energy() {
        let mut f = fleet(10);
        let full = f.deliverable();
        f.set_derating(0.5, 1.0);
        assert!((f.deliverable().as_joules() - full.as_joules() * 0.5).abs() < 1e-6);
        // Only 5 strings online: a fleet-sized request carries 5 servers.
        let got = f.offload(
            Power::from_kilowatts(10.0),
            Power::from_watts(55.0),
            Seconds::new(1.0),
        );
        assert!((got.as_watts() - 275.0).abs() < 1e-9);
        assert_eq!(f.status().on_battery, 5);
    }

    #[test]
    fn capacity_fade_shortens_runtime() {
        let mut f = fleet(10);
        let nominal = f.runtime_at(Power::from_watts(550.0));
        f.set_derating(1.0, 0.6);
        let faded = f.runtime_at(Power::from_watts(550.0));
        assert!((faded.as_secs() - nominal.as_secs() * 0.6).abs() < 1e-6);
        // Draining stops at the derated energy, not the physical store.
        let mut drained = Power::ZERO;
        for _ in 0..3600 {
            drained = f.offload(
                Power::from_watts(550.0),
                Power::from_watts(55.0),
                Seconds::new(1.0),
            );
        }
        assert!(drained.is_zero());
        assert!(f.deliverable().as_joules() < 1e-6);
        // The inaccessible 40% is still physically there: clearing the
        // fault restores it.
        f.set_derating(1.0, 1.0);
        assert!(f.deliverable() > Energy::ZERO);
    }

    #[test]
    fn nominal_derating_is_identity() {
        let mut a = fleet(10);
        let mut b = fleet(10);
        b.set_derating(1.0, 1.0);
        let ga = a.offload(
            Power::from_watts(300.0),
            Power::from_watts(55.0),
            Seconds::new(1.0),
        );
        let gb = b.offload(
            Power::from_watts(300.0),
            Power::from_watts(55.0),
            Seconds::new(1.0),
        );
        assert_eq!(ga, gb);
        assert_eq!(a, b);
    }

    #[test]
    fn discharged_fraction_tracks_soc() {
        let mut f = fleet(10);
        assert_eq!(f.discharged_fraction().as_f64(), 0.0);
        f.offload(
            Power::from_watts(550.0),
            Power::from_watts(55.0),
            Seconds::from_minutes(1.0),
        );
        assert!(f.discharged_fraction().as_f64() > 0.0);
    }
}
