//! A single UPS battery.

use crate::Chemistry;
use dcs_units::{Charge, Energy, Power, Ratio, Seconds};
use serde::{Deserialize, Serialize};

/// A UPS battery with state of charge and cycle accounting.
///
/// Energy accounting is done at the output terminals: [`Battery::discharge`]
/// reports the power actually delivered to the load, and the stored energy
/// drops by `delivered / efficiency`. The battery refuses to discharge below
/// its chemistry's depth-of-discharge floor.
///
/// # Examples
///
/// ```
/// use dcs_ups::{Battery, Chemistry};
/// use dcs_units::{Charge, Power, Seconds};
///
/// let mut b = Battery::new(Chemistry::LithiumIronPhosphate, Charge::from_amp_hours(0.5));
/// // Drain at the paper's peak normal server power.
/// let p = b.discharge(Power::from_watts(55.0), Seconds::from_minutes(3.0));
/// assert_eq!(p.as_watts(), 55.0);
/// assert!(b.state_of_charge().as_f64() > 0.4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    chemistry: Chemistry,
    capacity: Energy,
    stored: Energy,
    /// Cumulative energy drawn from the cells (before efficiency), used for
    /// equivalent-full-cycle accounting.
    throughput: Energy,
    /// Number of discharge *events* (transitions from idle to discharging).
    discharge_events: u32,
    discharging: bool,
}

impl Battery {
    /// Creates a fully charged battery from an amp-hour rating at the
    /// chemistry's nominal voltage.
    ///
    /// # Examples
    ///
    /// ```
    /// use dcs_ups::{Battery, Chemistry};
    /// use dcs_units::Charge;
    /// let b = Battery::new(Chemistry::LeadAcid, Charge::from_amp_hours(0.5));
    /// assert!(b.capacity().as_watt_hours() > 5.9);
    /// ```
    #[must_use]
    pub fn new(chemistry: Chemistry, rating: Charge) -> Battery {
        let capacity = rating.energy_at_volts(chemistry.nominal_volts());
        Battery {
            chemistry,
            capacity,
            stored: capacity,
            throughput: Energy::ZERO,
            discharge_events: 0,
            discharging: false,
        }
    }

    /// Creates a fully charged battery directly from an energy capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive.
    #[must_use]
    pub fn from_energy(chemistry: Chemistry, capacity: Energy) -> Battery {
        assert!(capacity > Energy::ZERO, "capacity must be positive");
        Battery {
            chemistry,
            capacity,
            stored: capacity,
            throughput: Energy::ZERO,
            discharge_events: 0,
            discharging: false,
        }
    }

    /// Returns the battery chemistry.
    #[must_use]
    pub fn chemistry(&self) -> Chemistry {
        self.chemistry
    }

    /// Returns the rated energy capacity.
    #[must_use]
    pub fn capacity(&self) -> Energy {
        self.capacity
    }

    /// Returns the currently stored energy.
    #[must_use]
    pub fn stored(&self) -> Energy {
        self.stored
    }

    /// Returns the state of charge as a ratio of capacity.
    #[must_use]
    pub fn state_of_charge(&self) -> Ratio {
        self.stored.ratio_of(self.capacity)
    }

    /// Returns the energy still deliverable to a load: usable stored energy
    /// (above the depth-of-discharge floor) times discharge efficiency.
    #[must_use]
    pub fn deliverable(&self) -> Energy {
        let floor = self.capacity * (1.0 - self.chemistry.max_depth_of_discharge());
        (self.stored - floor).max_zero() * self.chemistry.discharge_efficiency()
    }

    /// Returns how long this battery can carry `load` before hitting its
    /// discharge floor, or [`Seconds::NEVER`] for a non-positive load.
    ///
    /// # Examples
    ///
    /// ```
    /// use dcs_ups::{Battery, Chemistry};
    /// use dcs_units::{Charge, Power};
    /// let b = Battery::new(Chemistry::LithiumIronPhosphate, Charge::from_amp_hours(0.5));
    /// // The paper: 0.5 Ah sustains ~55 W for about 6 minutes.
    /// let t = b.runtime_at(Power::from_watts(55.0));
    /// assert!((t.as_minutes() - 6.0).abs() < 1.0);
    /// ```
    #[must_use]
    pub fn runtime_at(&self, load: Power) -> Seconds {
        if load <= Power::ZERO {
            return Seconds::NEVER;
        }
        self.deliverable() / load
    }

    /// Discharges into a load of `requested` power for `dt`, returning the
    /// power actually delivered (less than requested when the battery runs
    /// into its floor during the interval).
    ///
    /// # Panics
    ///
    /// Panics if `requested` is negative or `dt` is not strictly positive
    /// and finite.
    pub fn discharge(&mut self, requested: Power, dt: Seconds) -> Power {
        assert!(
            requested >= Power::ZERO,
            "requested power must be non-negative"
        );
        assert!(
            dt > Seconds::ZERO && !dt.is_never(),
            "time step must be positive and finite"
        );
        if requested.is_zero() {
            self.discharging = false;
            return Power::ZERO;
        }
        let available = self.deliverable();
        if available.is_zero() {
            self.discharging = false;
            return Power::ZERO;
        }
        if !self.discharging {
            self.discharging = true;
            self.discharge_events += 1;
        }
        let wanted = requested * dt;
        let delivered_energy = wanted.min(available);
        let drawn = delivered_energy / self.chemistry.discharge_efficiency();
        self.stored -= drawn;
        self.throughput += drawn;
        delivered_energy / dt
    }

    /// Recharges with `power` for `dt`, returning the power actually
    /// accepted (zero once full).
    ///
    /// # Panics
    ///
    /// Panics if `power` is negative or `dt` is not strictly positive and
    /// finite.
    pub fn recharge(&mut self, power: Power, dt: Seconds) -> Power {
        assert!(power >= Power::ZERO, "recharge power must be non-negative");
        assert!(
            dt > Seconds::ZERO && !dt.is_never(),
            "time step must be positive and finite"
        );
        self.discharging = false;
        let room = (self.capacity - self.stored).max_zero();
        let offered = power * dt;
        let accepted = offered.min(room);
        self.stored += accepted;
        accepted / dt
    }

    /// Returns the number of equivalent full cycles implied by the total
    /// discharge throughput.
    #[must_use]
    pub fn equivalent_full_cycles(&self) -> f64 {
        self.throughput.as_joules() / self.capacity.as_joules()
    }

    /// Returns the number of distinct discharge events so far.
    #[must_use]
    pub fn discharge_events(&self) -> u32 {
        self.discharge_events
    }

    /// Returns `true` if `events_per_month` discharge events of
    /// `depth` (fraction of capacity each) stay within the chemistry's
    /// tolerated monthly full discharges, i.e. sprinting at this cadence has
    /// no battery-lifetime cost.
    ///
    /// # Examples
    ///
    /// ```
    /// use dcs_ups::{Battery, Chemistry};
    /// use dcs_units::{Charge, Ratio};
    /// let b = Battery::new(Chemistry::LithiumIronPhosphate, Charge::from_amp_hours(0.5));
    /// // The paper's MS-trace month: 200 bursts at 26% depth each.
    /// assert!(b.within_lifetime_budget(200, Ratio::from_percent(26.0)));
    /// ```
    #[must_use]
    pub fn within_lifetime_budget(&self, events_per_month: u32, depth: Ratio) -> bool {
        let full_equiv = f64::from(events_per_month) * depth.as_f64().max(0.0);
        full_equiv <= f64::from(self.chemistry.tolerated_full_discharges_per_month()) * 6.0
            && depth.as_f64() <= self.chemistry.max_depth_of_discharge()
    }
}

impl std::fmt::Display for Battery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} battery {} / {} ({})",
            self.chemistry,
            self.stored,
            self.capacity,
            self.state_of_charge()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lfp() -> Battery {
        Battery::new(Chemistry::LithiumIronPhosphate, Charge::from_amp_hours(0.5))
    }

    #[test]
    fn paper_runtime_is_about_six_minutes() {
        let t = lfp().runtime_at(Power::from_watts(55.0));
        assert!(t.as_minutes() > 5.0 && t.as_minutes() < 7.5, "{t}");
    }

    #[test]
    fn discharge_delivers_requested_until_empty() {
        let mut b = lfp();
        let p = b.discharge(Power::from_watts(55.0), Seconds::from_minutes(1.0));
        assert_eq!(p.as_watts(), 55.0);
        // Drain the rest.
        let p2 = b.discharge(Power::from_watts(55.0), Seconds::from_hours(1.0));
        assert!(p2 < Power::from_watts(55.0));
        assert!(b.deliverable().is_zero());
        let p3 = b.discharge(Power::from_watts(55.0), Seconds::new(1.0));
        assert!(p3.is_zero());
    }

    #[test]
    fn efficiency_burns_extra_stored_energy() {
        let mut b = lfp();
        let before = b.stored();
        b.discharge(Power::from_watts(100.0), Seconds::new(36.0));
        let delivered = Energy::from_joules(3600.0);
        let drawn = before - b.stored();
        assert!(drawn > delivered);
        assert!((drawn.as_joules() - delivered.as_joules() / 0.95).abs() < 1e-6);
    }

    #[test]
    fn lead_acid_keeps_dod_floor() {
        let mut b = Battery::new(Chemistry::LeadAcid, Charge::from_amp_hours(1.0));
        b.discharge(Power::from_kilowatts(10.0), Seconds::from_hours(10.0));
        // 20% must remain.
        assert!((b.state_of_charge().as_f64() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn recharge_stops_at_capacity() {
        let mut b = lfp();
        b.discharge(Power::from_watts(55.0), Seconds::from_minutes(2.0));
        let accepted = b.recharge(Power::from_watts(1000.0), Seconds::from_hours(1.0));
        assert!(accepted > Power::ZERO);
        assert!((b.state_of_charge().as_f64() - 1.0).abs() < 1e-9);
        let again = b.recharge(Power::from_watts(10.0), Seconds::new(1.0));
        assert!(again.is_zero());
    }

    #[test]
    fn discharge_events_count_transitions() {
        let mut b = lfp();
        b.discharge(Power::from_watts(10.0), Seconds::new(1.0));
        b.discharge(Power::from_watts(10.0), Seconds::new(1.0));
        assert_eq!(b.discharge_events(), 1);
        b.recharge(Power::from_watts(10.0), Seconds::new(1.0));
        b.discharge(Power::from_watts(10.0), Seconds::new(1.0));
        assert_eq!(b.discharge_events(), 2);
    }

    #[test]
    fn equivalent_cycles_track_throughput() {
        let mut b = lfp();
        let cap = b.capacity();
        // Draw half the capacity (at the cells).
        let half = cap * 0.5 * b.chemistry().discharge_efficiency();
        b.discharge(half / Seconds::new(60.0), Seconds::new(60.0));
        assert!((b.equivalent_full_cycles() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lifetime_budget_matches_paper_examples() {
        let b = lfp();
        // 10 full discharges/month is explicitly fine.
        assert!(b.within_lifetime_budget(10, Ratio::ONE));
        // The MS-trace month: 200 bursts at 26% depth — fine per [18].
        assert!(b.within_lifetime_budget(200, Ratio::from_percent(26.0)));
        // An absurd cadence is not.
        assert!(!b.within_lifetime_budget(2000, Ratio::ONE));
    }

    #[test]
    fn from_energy_constructor() {
        let b = Battery::from_energy(Chemistry::LeadAcid, Energy::from_watt_hours(10.0));
        assert_eq!(b.capacity().as_watt_hours(), 10.0);
        assert_eq!(b.state_of_charge(), Ratio::ONE);
    }

    #[test]
    fn display_mentions_chemistry() {
        assert!(lfp().to_string().contains("LiFePO4"));
    }
}
