//! Battery chemistry parameters.

use dcs_units::Seconds;
use serde::{Deserialize, Serialize};

/// A battery chemistry and its datacenter-relevant parameters.
///
/// The paper (citing Kontorinis et al. \[18\]) distinguishes lead-acid (LA)
/// and lithium-iron-phosphate (LFP) batteries: LFP tolerates about ten full
/// discharges per month without reducing its lifetime below the required
/// service life (8 years for LFP, 4 for LA), which is what makes occasional
/// sprinting free of extra battery cost.
///
/// # Examples
///
/// ```
/// use dcs_ups::Chemistry;
///
/// let lfp = Chemistry::LithiumIronPhosphate;
/// assert_eq!(lfp.tolerated_full_discharges_per_month(), 10);
/// assert_eq!(lfp.required_service_years(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Chemistry {
    /// Valve-regulated lead-acid, the incumbent datacenter UPS battery.
    LeadAcid,
    /// Lithium iron phosphate (LiFePO₄), the paper's default.
    LithiumIronPhosphate,
}

impl Chemistry {
    /// Nominal battery voltage in volts.
    #[must_use]
    pub fn nominal_volts(self) -> f64 {
        match self {
            Chemistry::LeadAcid => 12.0,
            Chemistry::LithiumIronPhosphate => 12.8,
        }
    }

    /// Round-trip discharge efficiency (fraction of stored energy delivered
    /// to the load).
    #[must_use]
    pub fn discharge_efficiency(self) -> f64 {
        match self {
            Chemistry::LeadAcid => 0.90,
            Chemistry::LithiumIronPhosphate => 0.95,
        }
    }

    /// The deepest allowed discharge (fraction of capacity that may be
    /// drained) without damaging the battery.
    #[must_use]
    pub fn max_depth_of_discharge(self) -> f64 {
        match self {
            Chemistry::LeadAcid => 0.80,
            Chemistry::LithiumIronPhosphate => 1.00,
        }
    }

    /// Full discharges per month that do not shorten the battery's life
    /// below its required service life (\[18\]).
    #[must_use]
    pub fn tolerated_full_discharges_per_month(self) -> u32 {
        match self {
            Chemistry::LeadAcid => 2,
            Chemistry::LithiumIronPhosphate => 10,
        }
    }

    /// Required service life in years (4 for LA, 8 for LFP, per the paper).
    #[must_use]
    pub fn required_service_years(self) -> u32 {
        match self {
            Chemistry::LeadAcid => 4,
            Chemistry::LithiumIronPhosphate => 8,
        }
    }

    /// Typical switchover time from mains to battery. The paper notes a UPS
    /// can start "within several milliseconds" — far below the simulation
    /// step, so the simulator treats switchover as instantaneous but the
    /// constant is kept for documentation and testbed emulation.
    #[must_use]
    pub fn switchover_time(self) -> Seconds {
        Seconds::new(0.005)
    }
}

impl std::fmt::Display for Chemistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Chemistry::LeadAcid => write!(f, "lead-acid"),
            Chemistry::LithiumIronPhosphate => write!(f, "LiFePO4"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfp_tolerates_more_cycles_than_la() {
        assert!(
            Chemistry::LithiumIronPhosphate.tolerated_full_discharges_per_month()
                > Chemistry::LeadAcid.tolerated_full_discharges_per_month()
        );
    }

    #[test]
    fn service_years_match_paper() {
        assert_eq!(Chemistry::LeadAcid.required_service_years(), 4);
        assert_eq!(Chemistry::LithiumIronPhosphate.required_service_years(), 8);
    }

    #[test]
    fn efficiencies_are_fractions() {
        for c in [Chemistry::LeadAcid, Chemistry::LithiumIronPhosphate] {
            assert!(c.discharge_efficiency() > 0.0 && c.discharge_efficiency() <= 1.0);
            assert!(c.max_depth_of_discharge() > 0.0 && c.max_depth_of_discharge() <= 1.0);
        }
    }

    #[test]
    fn switchover_is_milliseconds() {
        assert!(Chemistry::LithiumIronPhosphate.switchover_time() < Seconds::new(0.05));
    }

    #[test]
    fn display() {
        assert_eq!(Chemistry::LeadAcid.to_string(), "lead-acid");
        assert_eq!(Chemistry::LithiumIronPhosphate.to_string(), "LiFePO4");
    }
}
