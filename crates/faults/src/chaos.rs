//! Harness-level chaos injection for supervised sweeps.
//!
//! The schedules in the crate root degrade the *modeled facility*; the
//! [`ChaosSchedule`] here degrades the *harness that simulates it*: it
//! tells a supervised executor (see `dcs_sim::parallel_map_supervised`) to
//! panic or stall a specific work item on a specific attempt. Like the
//! plant schedules, chaos is plain data — deterministic, seedable, and
//! serde round-trippable — so a chaotic run is exactly reproducible.
//!
//! Chaos only ever perturbs *attempts*; a perturbed attempt's output is
//! discarded and the item retried, so a supervised computation that
//! survives its chaos produces output bit-identical to a clean run. The
//! `dcs-sim` chaos suite asserts exactly that.
//!
//! # Examples
//!
//! ```
//! use dcs_faults::{ChaosKind, ChaosSchedule};
//!
//! let chaos = ChaosSchedule::panic_on(3, 0);
//! assert_eq!(chaos.lookup(3, 0), Some(&ChaosKind::Panic));
//! assert_eq!(chaos.lookup(3, 1), None, "retries run clean");
//! assert_eq!(chaos.lookup(2, 0), None, "other items run clean");
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What the chaos does to the targeted attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ChaosKind {
    /// The attempt panics (inside the supervisor's isolation boundary).
    Panic,
    /// The attempt stalls for `millis` before doing its work — long enough
    /// stalls trip the supervisor's per-item deadline.
    Delay {
        /// Injected stall in milliseconds.
        millis: u64,
    },
}

/// One chaos event: perturb work item `item` on its `attempt`-th try
/// (attempts count from zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosEvent {
    /// Index of the targeted work item within the supervised call.
    pub item: usize,
    /// Zero-based attempt number the perturbation fires on.
    pub attempt: u32,
    /// The perturbation.
    pub kind: ChaosKind,
}

/// A deterministic schedule of harness faults for one supervised call.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChaosSchedule {
    events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// The empty schedule: every attempt runs clean.
    pub const NONE: ChaosSchedule = ChaosSchedule { events: Vec::new() };

    /// Creates a schedule from explicit events.
    #[must_use]
    pub fn new(events: Vec<ChaosEvent>) -> ChaosSchedule {
        ChaosSchedule { events }
    }

    /// The empty schedule (by-value convenience, mirroring
    /// [`crate::FaultSchedule::none`]).
    #[must_use]
    pub fn none() -> ChaosSchedule {
        ChaosSchedule::NONE
    }

    /// A single injected panic on `item`'s `attempt`-th try.
    #[must_use]
    pub fn panic_on(item: usize, attempt: u32) -> ChaosSchedule {
        ChaosSchedule::new(vec![ChaosEvent {
            item,
            attempt,
            kind: ChaosKind::Panic,
        }])
    }

    /// A single injected stall of `millis` on `item`'s `attempt`-th try.
    #[must_use]
    pub fn delay_on(item: usize, attempt: u32, millis: u64) -> ChaosSchedule {
        ChaosSchedule::new(vec![ChaosEvent {
            item,
            attempt,
            kind: ChaosKind::Delay { millis },
        }])
    }

    /// Appends an event (builder style).
    #[must_use]
    pub fn with(mut self, event: ChaosEvent) -> ChaosSchedule {
        self.events.push(event);
        self
    }

    /// A seeded random schedule over `items` work items: roughly one in
    /// three items is perturbed on its *first* attempt only (half panics,
    /// half short stalls), so a supervisor with at least one retry always
    /// recovers. Deterministic in the seed.
    #[must_use]
    pub fn random(seed: u64, items: usize) -> ChaosSchedule {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5CA0_5EED);
        let mut events = Vec::new();
        for item in 0..items {
            if rng.gen_range(0..3_u32) == 0 {
                let kind = if rng.gen_range(0..2_u32) == 0 {
                    ChaosKind::Panic
                } else {
                    ChaosKind::Delay {
                        millis: rng.gen_range(1..20_u64),
                    }
                };
                events.push(ChaosEvent {
                    item,
                    attempt: 0,
                    kind,
                });
            }
        }
        ChaosSchedule { events }
    }

    /// A periodic stall: every `period`-th item (0, `period`, 2·`period`,
    /// …) stalls for `millis` on its first attempt, for the first `count`
    /// stalls. A live service's decision loop consumes items as
    /// monotonically increasing decision indices, so this models a plant
    /// interface that intermittently freezes — the scenario behind the
    /// service's degraded-serving watchdog.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn delay_every(period: usize, millis: u64, count: usize) -> ChaosSchedule {
        assert!(period > 0, "period must be positive");
        ChaosSchedule {
            events: (0..count)
                .map(|i| ChaosEvent {
                    item: i * period,
                    attempt: 0,
                    kind: ChaosKind::Delay { millis },
                })
                .collect(),
        }
    }

    /// Returns the perturbation scheduled for `item`'s `attempt`-th try,
    /// if any (first matching event wins).
    #[must_use]
    pub fn lookup(&self, item: usize, attempt: u32) -> Option<&ChaosKind> {
        self.events
            .iter()
            .find(|e| e.item == item && e.attempt == attempt)
            .map(|e| &e.kind)
    }

    /// Returns `true` if the schedule has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events.
    #[must_use]
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_matches_item_and_attempt() {
        let chaos = ChaosSchedule::panic_on(2, 1).with(ChaosEvent {
            item: 4,
            attempt: 0,
            kind: ChaosKind::Delay { millis: 7 },
        });
        assert_eq!(chaos.lookup(2, 1), Some(&ChaosKind::Panic));
        assert_eq!(chaos.lookup(4, 0), Some(&ChaosKind::Delay { millis: 7 }));
        assert_eq!(chaos.lookup(2, 0), None);
        assert_eq!(chaos.lookup(4, 1), None);
        assert!(!chaos.is_empty());
        assert!(ChaosSchedule::NONE.is_empty());
    }

    #[test]
    fn random_is_deterministic_and_first_attempt_only() {
        let a = ChaosSchedule::random(9, 64);
        let b = ChaosSchedule::random(9, 64);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "64 items should draw some chaos");
        assert!(a.events().iter().all(|e| e.attempt == 0));
        assert!(a.events().iter().all(|e| e.item < 64));
        let c = ChaosSchedule::random(10, 64);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn delay_every_stalls_periodic_items() {
        let chaos = ChaosSchedule::delay_every(3, 25, 2);
        assert_eq!(chaos.lookup(0, 0), Some(&ChaosKind::Delay { millis: 25 }));
        assert_eq!(chaos.lookup(3, 0), Some(&ChaosKind::Delay { millis: 25 }));
        assert_eq!(chaos.lookup(6, 0), None, "count bounds the stalls");
        assert_eq!(chaos.lookup(1, 0), None);
        assert_eq!(chaos.lookup(0, 1), None, "retries run clean");
    }

    #[test]
    fn serde_round_trip() {
        let chaos = ChaosSchedule::random(3, 32).with(ChaosEvent {
            item: 1,
            attempt: 2,
            kind: ChaosKind::Panic,
        });
        let text = serde_json::to_string(&chaos).expect("serializes");
        let back: ChaosSchedule = serde_json::from_str(&text).expect("parses");
        assert_eq!(chaos, back);
    }
}
