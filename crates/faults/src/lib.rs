//! Fault-injection schedules for the Data Center Sprinting plant.
//!
//! A [`FaultSchedule`] is a list of time-windowed [`FaultEvent`]s, each
//! degrading one part of the facility: UPS strings dropping out or fading,
//! the TES tank losing coolant or responding slowly, breakers derated
//! below nameplate, and the controller's sensors going noisy or stale.
//! The sprint controller queries [`FaultSchedule::active_at`] every control
//! period and applies the aggregate [`ActiveFaults`] view to its plant
//! models, so the same no-trip / no-overheat machinery that governs a
//! healthy facility also governs a degraded one.
//!
//! Schedules are plain data: seeded generation ([`FaultSchedule::random`])
//! is deterministic, and every type round-trips through serde.
//!
//! # Examples
//!
//! ```
//! use dcs_faults::{FaultEvent, FaultKind, FaultSchedule};
//! use dcs_units::Seconds;
//!
//! let schedule = FaultSchedule::new(vec![FaultEvent::new(
//!     Seconds::new(60.0),
//!     Seconds::new(300.0),
//!     FaultKind::BreakerDerated { factor: 0.8 },
//! )]);
//! assert!(!schedule.active_at(Seconds::ZERO).any());
//! let active = schedule.active_at(Seconds::new(120.0));
//! assert!(active.any());
//! assert!((active.breaker_factor - 0.8).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chaos;

pub use chaos::{ChaosEvent, ChaosKind, ChaosSchedule};

use dcs_units::{Seconds, TempDelta};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// One kind of injected fault, with its severity parameters.
///
/// Physical kinds (`UpsStringFailure`, `UpsCapacityFade`, `TesValveLag`,
/// `TesCapacityLoss`, `BreakerDerated`) degrade the plant itself; sensor
/// kinds (`SensorNoise`, `StaleTelemetry`) degrade only what the
/// controller *observes* — real power measurement stays exact (§IV-A), so
/// safety is preserved while decisions get worse.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FaultKind {
    /// A `fraction` of the per-server UPS strings drops offline: both the
    /// fleet's deliverable energy and its offload headcount shrink.
    UpsStringFailure {
        /// Fraction of strings lost, in `[0, 1]`.
        fraction: f64,
    },
    /// Battery ageing: the surviving strings deliver only `factor` of
    /// their rated energy.
    UpsCapacityFade {
        /// Remaining capacity factor, in `(0, 1]`.
        factor: f64,
    },
    /// The TES coolant valve responds with a first-order lag, throttling
    /// the achievable absorption rate within a control period.
    TesValveLag {
        /// Lag time constant in seconds, `>= 0`.
        seconds: f64,
    },
    /// Coolant loss: a `fraction` of the TES tank's stored heat-absorption
    /// budget is inaccessible.
    TesCapacityLoss {
        /// Fraction of capacity lost, in `[0, 1]`.
        fraction: f64,
    },
    /// Breakers derated below nameplate (ambient heat, ageing): every
    /// breaker behaves as if rated at `factor ×` its nameplate power.
    BreakerDerated {
        /// Effective rating factor, in `(0, 1]`.
        factor: f64,
    },
    /// Gaussian sensor noise (truncated at ±3σ) on the demand and
    /// temperature readings the controller plans with.
    SensorNoise {
        /// Standard deviation of the normalized-demand reading.
        demand_sigma: f64,
        /// Standard deviation of the temperature reading, in °C.
        temp_sigma: f64,
        /// Seed of the noise stream (deterministic replay).
        seed: u64,
    },
    /// The telemetry pipeline stalls: demand readings refresh only every
    /// `hold_steps` control periods.
    StaleTelemetry {
        /// Periods each reading is held for, `>= 1`.
        hold_steps: u32,
    },
}

impl FaultKind {
    /// Checks this kind's parameters, returning a description of the first
    /// violation. Serde-constructed values bypass [`FaultEvent::new`], so
    /// config loaders should run [`FaultSchedule::validate`] (which calls
    /// this) before simulating.
    ///
    /// # Errors
    ///
    /// Returns the constraint that failed (see each variant's field docs).
    pub fn check(&self) -> Result<(), String> {
        match *self {
            FaultKind::UpsStringFailure { fraction } | FaultKind::TesCapacityLoss { fraction } => {
                if !(0.0..=1.0).contains(&fraction) {
                    return Err("fraction must be in [0, 1]".into());
                }
            }
            FaultKind::UpsCapacityFade { factor } | FaultKind::BreakerDerated { factor } => {
                if !(factor > 0.0 && factor <= 1.0) {
                    return Err("factor must be in (0, 1]".into());
                }
            }
            FaultKind::TesValveLag { seconds } => {
                if !(seconds.is_finite() && seconds >= 0.0) {
                    return Err("lag must be finite and non-negative".into());
                }
            }
            FaultKind::SensorNoise {
                demand_sigma,
                temp_sigma,
                ..
            } => {
                if !(demand_sigma.is_finite() && demand_sigma >= 0.0) {
                    return Err("demand sigma must be finite and non-negative".into());
                }
                if !(temp_sigma.is_finite() && temp_sigma >= 0.0) {
                    return Err("temperature sigma must be finite and non-negative".into());
                }
            }
            FaultKind::StaleTelemetry { hold_steps } => {
                if hold_steps < 1 {
                    return Err("hold steps must be at least 1".into());
                }
            }
        }
        Ok(())
    }

    fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }

    /// Returns `true` for the kinds that degrade the plant itself (as
    /// opposed to the controller's sensors). Physical faults strictly
    /// shrink the resources available, so a physically faulted run can
    /// never outperform its fault-free twin; sensor faults perturb
    /// *decisions* and carry no such monotonicity guarantee.
    #[must_use]
    pub fn is_physical(&self) -> bool {
        !matches!(
            self,
            FaultKind::SensorNoise { .. } | FaultKind::StaleTelemetry { .. }
        )
    }
}

/// One fault active over the half-open time window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Window start (inclusive).
    pub start: Seconds,
    /// Window end (exclusive).
    pub end: Seconds,
    /// What is degraded, and by how much.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Creates a fault event.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or negative, or the kind's parameters
    /// are out of range (see each [`FaultKind`] variant).
    #[must_use]
    pub fn new(start: Seconds, end: Seconds, kind: FaultKind) -> FaultEvent {
        assert!(start >= Seconds::ZERO, "window start must be non-negative");
        assert!(end > start, "window must be non-empty");
        kind.validate();
        FaultEvent { start, end, kind }
    }

    /// Returns `true` if the window covers time `t`.
    #[must_use]
    pub fn covers(&self, t: Seconds) -> bool {
        self.start <= t && t < self.end
    }
}

/// The aggregate effect of every fault active at one instant, in the form
/// the plant models consume.
///
/// Factors compose across overlapping events: capacity-like factors
/// multiply, the breaker derate takes the most severe value, valve lags
/// add, and sensor parameters take the worst case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActiveFaults {
    /// Fraction of UPS strings still online, in `[0, 1]`.
    pub ups_available_fraction: f64,
    /// Capacity-fade factor on the surviving strings, in `(0, 1]`.
    pub ups_capacity_factor: f64,
    /// Total TES valve lag time constant.
    pub tes_valve_lag: Seconds,
    /// Fraction of the TES budget still accessible, in `[0, 1]`.
    pub tes_capacity_factor: f64,
    /// Effective breaker-rating factor, in `(0, 1]`.
    pub breaker_factor: f64,
    /// Standard deviation of the demand reading (0 = exact).
    pub demand_sigma: f64,
    /// Standard deviation of the temperature reading in °C (0 = exact).
    pub temp_sigma: f64,
    /// Seed of the sensor-noise stream.
    pub noise_seed: u64,
    /// Periods each demand reading is held for (1 = fresh every period).
    pub stale_hold_steps: u32,
}

impl ActiveFaults {
    /// The no-fault aggregate: every factor 1, every sigma 0.
    #[must_use]
    pub fn nominal() -> ActiveFaults {
        ActiveFaults {
            ups_available_fraction: 1.0,
            ups_capacity_factor: 1.0,
            tes_valve_lag: Seconds::ZERO,
            tes_capacity_factor: 1.0,
            breaker_factor: 1.0,
            demand_sigma: 0.0,
            temp_sigma: 0.0,
            noise_seed: 0,
            stale_hold_steps: 1,
        }
    }

    /// Returns `true` if any fault is active (any field off-nominal).
    #[must_use]
    pub fn any(&self) -> bool {
        self != &ActiveFaults::nominal()
    }

    /// Returns the TES absorption-rate factor a first-order valve lag
    /// imposes on a control period of `dt`: the average achievable flow is
    /// `dt / (dt + lag)` of the commanded flow (1 when there is no lag).
    #[must_use]
    pub fn tes_rate_factor(&self, dt: Seconds) -> f64 {
        let lag = self.tes_valve_lag.as_secs();
        if lag <= 0.0 {
            return 1.0;
        }
        dt.as_secs() / (dt.as_secs() + lag)
    }
}

impl Default for ActiveFaults {
    fn default() -> ActiveFaults {
        ActiveFaults::nominal()
    }
}

/// A deterministic, serde-round-trippable schedule of fault events.
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The empty schedule as a constant, so fault-free callers can borrow a
    /// `&'static FaultSchedule` instead of allocating one per run.
    pub const NONE: FaultSchedule = FaultSchedule { events: Vec::new() };

    /// The empty schedule: a facility with no injected faults. Running a
    /// simulation under this schedule reproduces the fault-free telemetry
    /// exactly.
    #[must_use]
    pub fn none() -> FaultSchedule {
        FaultSchedule { events: Vec::new() }
    }

    /// Creates a schedule from explicit events.
    ///
    /// # Panics
    ///
    /// Panics if any event's parameters are out of range (events built
    /// with [`FaultEvent::new`] are always valid).
    #[must_use]
    pub fn new(events: Vec<FaultEvent>) -> FaultSchedule {
        for e in &events {
            assert!(
                e.start >= Seconds::ZERO,
                "window start must be non-negative"
            );
            assert!(e.end > e.start, "window must be non-empty");
            e.kind.validate();
        }
        FaultSchedule { events }
    }

    /// Checks every event's window and parameters, returning the first
    /// violation with its event index.
    ///
    /// Deserialized schedules bypass the panicking constructors, so config
    /// loaders should call this before handing a schedule to a controller —
    /// an out-of-range parameter otherwise panics mid-simulation.
    ///
    /// # Errors
    ///
    /// Returns `"event <i>: <constraint>"` for the first invalid event.
    pub fn validate(&self) -> Result<(), String> {
        for (i, e) in self.events.iter().enumerate() {
            if e.start < Seconds::ZERO {
                return Err(format!("event {i}: window start must be non-negative"));
            }
            if e.end <= e.start {
                return Err(format!("event {i}: window must be non-empty"));
            }
            e.kind.check().map_err(|msg| format!("event {i}: {msg}"))?;
        }
        Ok(())
    }

    /// Returns the events.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Returns `true` if the schedule has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Returns `true` if every event is a physical (plant) fault — see
    /// [`FaultKind::is_physical`].
    #[must_use]
    pub fn is_physical(&self) -> bool {
        self.events.iter().all(|e| e.kind.is_physical())
    }

    /// Returns the aggregate effect of the events active at time `t`.
    #[must_use]
    pub fn active_at(&self, t: Seconds) -> ActiveFaults {
        let mut acc = ActiveFaults::nominal();
        for event in self.events.iter().filter(|e| e.covers(t)) {
            match event.kind {
                FaultKind::UpsStringFailure { fraction } => {
                    acc.ups_available_fraction *= 1.0 - fraction;
                }
                FaultKind::UpsCapacityFade { factor } => {
                    acc.ups_capacity_factor *= factor;
                }
                FaultKind::TesValveLag { seconds } => {
                    acc.tes_valve_lag += Seconds::new(seconds);
                }
                FaultKind::TesCapacityLoss { fraction } => {
                    acc.tes_capacity_factor *= 1.0 - fraction;
                }
                FaultKind::BreakerDerated { factor } => {
                    acc.breaker_factor = acc.breaker_factor.min(factor);
                }
                FaultKind::SensorNoise {
                    demand_sigma,
                    temp_sigma,
                    seed,
                } => {
                    if demand_sigma > acc.demand_sigma || temp_sigma > acc.temp_sigma {
                        acc.noise_seed = seed;
                    }
                    acc.demand_sigma = acc.demand_sigma.max(demand_sigma);
                    acc.temp_sigma = acc.temp_sigma.max(temp_sigma);
                }
                FaultKind::StaleTelemetry { hold_steps } => {
                    acc.stale_hold_steps = acc.stale_hold_steps.max(hold_steps);
                }
            }
        }
        acc
    }

    /// Generates a deterministic randomized schedule of 1–3 windowed
    /// events over `[0, duration)`, drawing from every fault kind with
    /// severities bounded away from total failure (so a provisioned
    /// facility retains a survivable operating point).
    ///
    /// The same `(seed, duration)` always yields the same schedule.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not strictly positive and finite.
    #[must_use]
    pub fn random(seed: u64, duration: Seconds) -> FaultSchedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.gen_range(1..=3usize);
        let events = (0..count)
            .map(|_| Self::random_event(&mut rng, duration, 7))
            .collect();
        FaultSchedule::new(events)
    }

    /// Generates a deterministic randomized schedule of 1–2 *physical*
    /// faults (no sensor faults), each spanning the whole of
    /// `[0, duration)`.
    ///
    /// Physical whole-run faults strictly shrink the plant's resources at
    /// every step, so a run under this schedule never outperforms its
    /// fault-free twin — the monotone-degradation property the sim test
    /// suite asserts. Windowed or sensor faults carry no such guarantee
    /// (a mid-run recovery or a low-balling sensor can shift energy
    /// spending later in the trace).
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not strictly positive and finite.
    #[must_use]
    pub fn random_physical(seed: u64, duration: Seconds) -> FaultSchedule {
        assert!(
            duration > Seconds::ZERO && !duration.is_never(),
            "duration must be positive and finite"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.gen_range(1..=2usize);
        let events = (0..count)
            .map(|_| {
                let kind = Self::random_kind(&mut rng, 5);
                FaultEvent::new(Seconds::ZERO, duration, kind)
            })
            .collect();
        FaultSchedule::new(events)
    }

    fn random_event(rng: &mut StdRng, duration: Seconds, kinds: usize) -> FaultEvent {
        assert!(
            duration > Seconds::ZERO && !duration.is_never(),
            "duration must be positive and finite"
        );
        let d = duration.as_secs();
        let start = rng.gen_range(0.0..0.5 * d);
        let len = rng.gen_range(0.2 * d..0.5 * d);
        let end = (start + len).min(d);
        let kind = Self::random_kind(rng, kinds);
        FaultEvent::new(Seconds::new(start), Seconds::new(end), kind)
    }

    fn random_kind(rng: &mut StdRng, kinds: usize) -> FaultKind {
        match rng.gen_range(0..kinds) {
            0 => FaultKind::UpsStringFailure {
                fraction: rng.gen_range(0.1..0.5),
            },
            1 => FaultKind::UpsCapacityFade {
                factor: rng.gen_range(0.6..0.95),
            },
            2 => FaultKind::TesValveLag {
                seconds: rng.gen_range(2.0..20.0),
            },
            3 => FaultKind::TesCapacityLoss {
                fraction: rng.gen_range(0.1..0.5),
            },
            4 => FaultKind::BreakerDerated {
                factor: rng.gen_range(0.78..0.95),
            },
            5 => FaultKind::SensorNoise {
                demand_sigma: rng.gen_range(0.02..0.15),
                temp_sigma: rng.gen_range(0.05..0.5),
                seed: rng.next_u64(),
            },
            _ => FaultKind::StaleTelemetry {
                hold_steps: rng.gen_range(2..30u32),
            },
        }
    }
}

/// The deterministic sensor-noise stream the controller draws from while a
/// [`FaultKind::SensorNoise`] window is active.
#[derive(Debug, Clone)]
pub struct SensorRng {
    rng: StdRng,
}

impl SensorRng {
    /// Creates a stream from a seed.
    #[must_use]
    pub fn new(seed: u64) -> SensorRng {
        SensorRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples a zero-mean Gaussian with standard deviation `sigma`,
    /// truncated (by rejection) at ±3σ. The truncation bounds the
    /// controller's worst-case observation error, which is what lets a
    /// fixed guard band restore the no-overheat guarantee under noise.
    pub fn truncated_gauss(&mut self, sigma: f64) -> f64 {
        if sigma <= 0.0 {
            return 0.0;
        }
        loop {
            // Box–Muller on (0, 1] × [0, 1).
            let u1: f64 = 1.0 - self.rng.gen_range(0.0..1.0);
            let u2: f64 = self.rng.gen_range(0.0..1.0);
            let z =
                (-2.0 * u1.max(f64::MIN_POSITIVE).ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            if z.abs() <= 3.0 {
                return z * sigma;
            }
        }
    }
}

/// Everything the controller's sensors report for one control period: the
/// aggregate fault state, the (possibly noisy/stale) demand reading, and the
/// pessimistic thermal guard band.
///
/// Computed once per step by a [`FaultObserver`] and shared by every lane of
/// a batched run — the observation depends only on the demand stream and the
/// fault schedule, never on the lane's sprint bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// The aggregate fault state at this step.
    pub active: ActiveFaults,
    /// The demand reading the controller's decisions see.
    pub observed: f64,
    /// Pessimistic margin added to the room-temperature reading while
    /// temperature sensors are noisy.
    pub thermal_bias: TempDelta,
}

/// The sensor pipeline as a standalone state machine: noise stream keyed by
/// the active window's seed, plus the stale-telemetry sample-and-hold.
///
/// One observer fed the per-step demands produces the exact reading sequence
/// an embedded controller pipeline would, so N lanes can share a single
/// observer pass.
#[derive(Debug, Clone, Default)]
pub struct FaultObserver {
    rng: Option<(u64, SensorRng)>,
    stale: Option<(f64, u32)>,
}

impl FaultObserver {
    /// Creates an observer with no noise stream and no held sample.
    #[must_use]
    pub fn new() -> FaultObserver {
        FaultObserver::default()
    }

    /// Returns the noise stream for `seed`, starting a fresh one whenever a
    /// new fault window (with a new seed) becomes active.
    fn rng_for(&mut self, seed: u64) -> &mut SensorRng {
        match self.rng {
            Some((s, _)) if s == seed => {}
            _ => self.rng = Some((seed, SensorRng::new(seed))),
        }
        &mut self.rng.as_mut().expect("just set").1
    }

    /// Produces this step's observation from the true demand and the active
    /// fault state. Draw order is fixed — demand noise first, thermal bias
    /// second, from the same stream — so observations are reproducible.
    pub fn observe(&mut self, demand: f64, active: &ActiveFaults) -> Observation {
        let mut observed = demand;
        if active.demand_sigma > 0.0 {
            let noise = self
                .rng_for(active.noise_seed)
                .truncated_gauss(active.demand_sigma);
            observed = (demand + noise).max(0.0);
        }
        if active.stale_hold_steps > 1 {
            let (held, age) = match self.stale.take() {
                Some((held, age)) if age + 1 < active.stale_hold_steps => (held, age + 1),
                _ => (observed, 0),
            };
            self.stale = Some((held, age));
            observed = held;
        } else {
            self.stale = None;
        }
        let thermal_bias = if active.temp_sigma <= 0.0 {
            TempDelta::ZERO
        } else {
            let noise = self
                .rng_for(active.noise_seed)
                .truncated_gauss(active.temp_sigma);
            TempDelta::new(noise + 3.0 * active.temp_sigma).max_zero()
        };
        Observation {
            active: *active,
            observed,
            thermal_bias,
        }
    }
}

/// Per-step fault-window lookups for a fixed control period, resolved once
/// and shared across batched lanes.
///
/// Times are accumulated stepwise (`now += dt`) from zero so the lookups are
/// bitwise-identical to a controller advancing its own clock.
#[derive(Debug, Clone)]
pub struct FaultTimeline {
    active: Vec<ActiveFaults>,
    nominal_from: usize,
}

impl FaultTimeline {
    /// Resolves `schedule` at each of `steps` periods of length `dt`.
    #[must_use]
    pub fn new(schedule: &FaultSchedule, dt: Seconds, steps: usize) -> FaultTimeline {
        let mut active = Vec::with_capacity(steps);
        let mut now = Seconds::ZERO;
        for _ in 0..steps {
            active.push(schedule.active_at(now));
            now += dt;
        }
        let nominal_from = active
            .iter()
            .rposition(ActiveFaults::any)
            .map_or(0, |last| last + 1);
        FaultTimeline {
            active,
            nominal_from,
        }
    }

    /// The per-step aggregate fault states, in step order.
    #[must_use]
    pub fn active(&self) -> &[ActiveFaults] {
        &self.active
    }

    /// The first step index from which every remaining step is
    /// fault-nominal (equal to `len` if the last step has an active fault).
    #[must_use]
    pub fn nominal_from(&self) -> usize {
        self.nominal_from
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_deserialized_garbage() {
        // Serde bypasses the panicking constructors; validate() is the
        // fallible gate a config loader runs instead.
        let bad: FaultSchedule = serde_json::from_str(
            r#"{"events":[{"start":0.0,"end":10.0,
                "kind":{"kind":"breaker_derated","factor":-2.0}}]}"#,
        )
        .expect("deserializes without range checks");
        let err = bad.validate().expect_err("must be rejected");
        assert_eq!(err, "event 0: factor must be in (0, 1]");

        let inverted: FaultSchedule = serde_json::from_str(
            r#"{"events":[{"start":500.0,"end":100.0,
                "kind":{"kind":"breaker_derated","factor":0.9}}]}"#,
        )
        .expect("deserializes without range checks");
        let err = inverted.validate().expect_err("must be rejected");
        assert_eq!(err, "event 0: window must be non-empty");

        assert!(FaultSchedule::none().validate().is_ok());
        assert!(schedule().validate().is_ok());
    }

    fn schedule() -> FaultSchedule {
        FaultSchedule::new(vec![
            FaultEvent::new(
                Seconds::new(10.0),
                Seconds::new(20.0),
                FaultKind::UpsStringFailure { fraction: 0.5 },
            ),
            FaultEvent::new(
                Seconds::new(15.0),
                Seconds::new(30.0),
                FaultKind::UpsCapacityFade { factor: 0.8 },
            ),
            FaultEvent::new(
                Seconds::new(15.0),
                Seconds::new(30.0),
                FaultKind::BreakerDerated { factor: 0.9 },
            ),
        ])
    }

    #[test]
    fn none_is_nominal_everywhere() {
        let s = FaultSchedule::none();
        assert!(s.is_empty());
        for t in 0..100 {
            assert!(!s.active_at(Seconds::new(f64::from(t))).any());
        }
    }

    #[test]
    fn windows_are_half_open_and_compose() {
        let s = schedule();
        assert!(!s.active_at(Seconds::new(9.9)).any());
        let at_10 = s.active_at(Seconds::new(10.0));
        assert!((at_10.ups_available_fraction - 0.5).abs() < 1e-12);
        assert_eq!(at_10.ups_capacity_factor, 1.0);
        // Overlap: both UPS faults active, plus the breaker derate.
        let at_17 = s.active_at(Seconds::new(17.0));
        assert!((at_17.ups_available_fraction - 0.5).abs() < 1e-12);
        assert!((at_17.ups_capacity_factor - 0.8).abs() < 1e-12);
        assert!((at_17.breaker_factor - 0.9).abs() < 1e-12);
        // The string-failure window ends at 20 (exclusive).
        let at_20 = s.active_at(Seconds::new(20.0));
        assert_eq!(at_20.ups_available_fraction, 1.0);
        assert!((at_20.ups_capacity_factor - 0.8).abs() < 1e-12);
        assert!(!s.active_at(Seconds::new(30.0)).any());
    }

    #[test]
    fn valve_lags_add_and_shrink_the_rate_factor() {
        let s = FaultSchedule::new(vec![
            FaultEvent::new(
                Seconds::ZERO,
                Seconds::new(10.0),
                FaultKind::TesValveLag { seconds: 2.0 },
            ),
            FaultEvent::new(
                Seconds::ZERO,
                Seconds::new(10.0),
                FaultKind::TesValveLag { seconds: 3.0 },
            ),
        ]);
        let active = s.active_at(Seconds::new(1.0));
        assert_eq!(active.tes_valve_lag, Seconds::new(5.0));
        let f = active.tes_rate_factor(Seconds::new(5.0));
        assert!((f - 0.5).abs() < 1e-12);
        assert_eq!(
            ActiveFaults::nominal().tes_rate_factor(Seconds::new(1.0)),
            1.0
        );
    }

    #[test]
    fn random_is_deterministic_and_valid() {
        let d = Seconds::from_minutes(30.0);
        for seed in 0..50u64 {
            let a = FaultSchedule::random(seed, d);
            let b = FaultSchedule::random(seed, d);
            assert_eq!(a, b);
            assert!(!a.is_empty());
            for e in a.events() {
                assert!(e.start >= Seconds::ZERO && e.end <= d && e.end > e.start);
            }
        }
        assert_ne!(
            FaultSchedule::random(1, d),
            FaultSchedule::random(2, d),
            "different seeds should differ"
        );
    }

    #[test]
    fn random_physical_spans_the_run_and_has_no_sensor_faults() {
        let d = Seconds::from_minutes(20.0);
        for seed in 0..50u64 {
            let s = FaultSchedule::random_physical(seed, d);
            assert!(s.is_physical());
            for e in s.events() {
                assert_eq!(e.start, Seconds::ZERO);
                assert_eq!(e.end, d);
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let s = schedule();
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        // Every kind round-trips, including the tagged sensor variants.
        let all = FaultSchedule::new(vec![
            FaultEvent::new(
                Seconds::ZERO,
                Seconds::new(1.0),
                FaultKind::TesValveLag { seconds: 4.0 },
            ),
            FaultEvent::new(
                Seconds::ZERO,
                Seconds::new(1.0),
                FaultKind::TesCapacityLoss { fraction: 0.25 },
            ),
            FaultEvent::new(
                Seconds::ZERO,
                Seconds::new(1.0),
                FaultKind::SensorNoise {
                    demand_sigma: 0.1,
                    temp_sigma: 0.2,
                    seed: 42,
                },
            ),
            FaultEvent::new(
                Seconds::ZERO,
                Seconds::new(1.0),
                FaultKind::StaleTelemetry { hold_steps: 5 },
            ),
        ]);
        let json = serde_json::to_string(&all).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(all, back);
    }

    #[test]
    fn sensor_rng_is_deterministic_and_truncated() {
        let mut a = SensorRng::new(7);
        let mut b = SensorRng::new(7);
        let mut spread = 0.0f64;
        for _ in 0..2000 {
            let x = a.truncated_gauss(0.1);
            assert_eq!(x, b.truncated_gauss(0.1));
            assert!(x.abs() <= 0.3 + 1e-12, "sample {x} beyond 3 sigma");
            spread = spread.max(x.abs());
        }
        assert!(spread > 0.05, "noise looks degenerate: max |x| = {spread}");
        assert_eq!(SensorRng::new(1).truncated_gauss(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn empty_window_panics() {
        let _ = FaultEvent::new(
            Seconds::new(5.0),
            Seconds::new(5.0),
            FaultKind::BreakerDerated { factor: 0.9 },
        );
    }

    #[test]
    #[should_panic(expected = "factor must be in (0, 1]")]
    fn bad_factor_panics() {
        let _ = FaultEvent::new(
            Seconds::ZERO,
            Seconds::new(1.0),
            FaultKind::BreakerDerated { factor: 0.0 },
        );
    }
}
