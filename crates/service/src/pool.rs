//! The connection worker pool: a fixed number of serving threads behind
//! a bounded hand-off queue.
//!
//! PR 6's acceptor spawned one thread per connection — unbounded under a
//! connection flood, and a failed spawn silently dropped the peer. The
//! pool inverts that: `workers` threads are created once at boot, the
//! acceptor hands accepted sockets through a `sync_channel` of depth
//! `accept_queue`, and when every worker is busy *and* the queue is full
//! the acceptor immediately answers a typed `503 overloaded` and closes
//! — the hard connection limit is `workers + accept_queue`, and a flood
//! degrades into fast typed rejections instead of thread exhaustion.
//!
//! Workers poll the queue with a short timeout so they observe shutdown
//! and drain promptly; a connection that was queued before a drain began
//! but dequeued after it is answered with a typed `503 draining` rather
//! than served.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::{EngineMsg, Mode, Shared};
use crate::http::write_json;
use crate::protocol::ErrorBody;
use crate::service::serve_connection;

/// How often an idle worker re-checks the shutdown flag.
const POOL_TICK: Duration = Duration::from_millis(50);

/// Everything a connection worker needs to serve requests.
pub(crate) struct ConnContext {
    /// State shared with the engine and watchdog.
    pub shared: Arc<Shared>,
    /// Process-wide stop flag.
    pub shutdown: Arc<AtomicBool>,
    /// The engine's bounded request queue.
    pub tx: SyncSender<EngineMsg>,
}

/// The running pool: the dispatch side plus the worker handles.
pub(crate) struct ConnPool {
    tx: SyncSender<TcpStream>,
    workers: Vec<JoinHandle<()>>,
}

impl ConnPool {
    /// Boots `workers` serving threads behind a queue of depth
    /// `accept_queue`.
    pub fn spawn(
        workers: usize,
        accept_queue: usize,
        ctx: Arc<ConnContext>,
    ) -> std::io::Result<ConnPool> {
        let (tx, rx) = sync_channel::<TcpStream>(accept_queue);
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = rx.clone();
            let ctx = ctx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("sprintd-worker-{i}"))
                .spawn(move || run_worker(&rx, &ctx))?;
            handles.push(handle);
        }
        Ok(ConnPool {
            tx,
            workers: handles,
        })
    }

    /// Hands a connection to the pool. Returns the stream back when the
    /// pool is at capacity so the acceptor can reject it with a typed
    /// status.
    pub fn try_dispatch(&self, stream: TcpStream) -> Result<(), TcpStream> {
        match self.tx.try_send(stream) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(stream)) | Err(TrySendError::Disconnected(stream)) => {
                Err(stream)
            }
        }
    }

    /// Joins every worker (callers set the shutdown flag first).
    pub fn join(self) {
        drop(self.tx);
        for handle in self.workers {
            let _ = handle.join();
        }
    }
}

/// One worker: pull connections, serve them to completion.
fn run_worker(rx: &Mutex<Receiver<TcpStream>>, ctx: &ConnContext) {
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Hold the lock only for the dequeue, never while serving.
        let next = {
            let guard = match rx.lock() {
                Ok(guard) => guard,
                Err(_) => return,
            };
            guard.recv_timeout(POOL_TICK)
        };
        match next {
            Ok(stream) => {
                if ctx.shared.mode() == Mode::Draining {
                    reject(stream, 503, "draining", "service is draining");
                    ctx.shared
                        .counters
                        .connections_rejected
                        .fetch_add(1, Ordering::SeqCst);
                    continue;
                }
                ctx.shared.connections_active.fetch_add(1, Ordering::SeqCst);
                serve_connection(stream, ctx);
                ctx.shared.connections_active.fetch_sub(1, Ordering::SeqCst);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Answers a connection the pool cannot serve with one typed error and
/// closes it. Bounded by a short write timeout so a slow peer cannot
/// stall the caller (the acceptor).
pub(crate) fn reject(stream: TcpStream, status: u16, kind: &'static str, message: &str) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut stream = stream;
    let body = ErrorBody::new(kind, message).to_json();
    let _ = write_json(&mut stream, status, &body, true);
}
