//! Fault-tolerant live sprint-control service.
//!
//! Wraps the facility step kernel (`dcs-core`'s [`dcs_core::step_cycle`])
//! behind a long-running daemon: demand samples arrive over HTTP
//! (`POST /step`), sprint decisions come back, and the plant's thermal
//! and electrical state persists across crashes. The paper's controller
//! (§IV) runs in a loop at the data-center operator's side; this crate is
//! that loop as an operable service, built on the robustness rails the
//! repository already has (typed [`dcs_sim::SimError`]s, chaos injection
//! from `dcs-faults`, atomic [`dcs_sim::CheckpointStore`] snapshots).
//!
//! The robustness contract:
//!
//! - **Deadline-bounded decisions.** Every `/step` is answered within
//!   `deadline_ms` — with a decision, or with a typed
//!   `deadline_exceeded` error, never with an unbounded hang.
//! - **Bounded queue.** At most `queue_depth` requests wait on the
//!   engine; beyond that the service answers `429 backpressure`
//!   immediately instead of queueing without bound.
//! - **Degraded serving.** A stale demand feed or an engine overrun
//!   flips the service to fail-safe mode: `/step` still answers `200`,
//!   actuating the normal (non-sprint) core count, flagged
//!   `degraded: true`. The watchdog probes the engine and restores
//!   normal serving when it proves healthy.
//! - **Crash-safe hot state.** Breaker thermal memory, UPS/TES charge,
//!   room temperature, ledgers, and the sprint lifecycle are
//!   checkpointed atomically; after a `kill -9`, a restart restores the
//!   newest intact snapshot and the physics resumes bit-identically.
//! - **Validated hot reload.** `POST /reload` parses and validates the
//!   full config before anything swaps; an invalid config leaves the
//!   running one untouched and reports a typed error.
//!
//! The daemon binary is `sprintd`; see the crate's integration tests for
//! end-to-end flows including a real `kill -9` crash/recovery cycle.

pub mod client;
mod config;
mod engine;
mod hot;
pub mod http;
pub mod netchaos;
mod pool;
mod protocol;
mod service;

pub use client::{ClientError, RetryClient, RetryConfig};
pub use config::{
    ServiceConfig, DEFAULT_ACCEPT_QUEUE, DEFAULT_CHECKPOINT_EVERY, DEFAULT_DEADLINE_MS,
    DEFAULT_DRAIN_DEADLINE_MS, DEFAULT_QUEUE_DEPTH, DEFAULT_READ_BUDGET_MS, DEFAULT_REPLAY_CACHE,
    DEFAULT_STALE_AFTER_MS, DEFAULT_STEP_SECS, DEFAULT_WINDOW_STEPS, DEFAULT_WORKERS,
};
pub use engine::{
    open_store, Counters, EngineMsg, EngineStatus, Mode, ReloadOutcome, Shared, StepFailure,
    StepOutcome,
};
pub use hot::{ServiceHotState, HOT_STATE_KIND, HOT_STATE_SCHEMA};
pub use netchaos::{ChaosProxy, FaultDirection, FaultKind, FaultPlan, ProxyStats};
pub use protocol::{
    BreakerStatus, DegradedFlags, DrainStatus, ErrorBody, ErrorDetail, FacilityStatus, HealthBody,
    ReloadResponse, ServiceCounters, ShutdownResponse, SprintStatus, StatusBody, StepBody,
    StepResponse, TesStatus, UpsStatus, STATUS_SCHEMA,
};
pub use service::{ServiceOptions, SprintService};
