//! Crash-safe hot state: what the service persists between decisions.
//!
//! Every `checkpoint_every` decisions the engine snapshots the facility's
//! mutable state ([`dcs_core::FacilityHotState`]: breaker thermal memory,
//! UPS and TES charge, room temperature, ledgers) and the policy's sprint
//! lifecycle ([`dcs_core::PolicyHotState`]) into a
//! [`dcs_sim::CheckpointStore`] — atomic tmp+rename snapshots with
//! checksums, so a `kill -9` mid-save leaves the previous snapshot
//! intact. On boot the newest intact snapshot is imported and the
//! facility resumes bit-identically.

use dcs_core::{FacilityHotState, PolicyHotState};
use serde::{Deserialize, Serialize};

/// Schema tag for service hot-state snapshots.
pub const HOT_STATE_SCHEMA: &str = "dcs-service/hot-state-v1";

/// The checkpoint kind recorded in every snapshot header.
pub const HOT_STATE_KIND: &str = "dcs-service/hot-state";

/// One durable snapshot of the service's mutable state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceHotState {
    /// Snapshot schema tag ([`HOT_STATE_SCHEMA`]).
    pub schema: String,
    /// Decisions completed when the snapshot was taken.
    pub decisions: u64,
    /// The facility's plant state.
    pub facility: FacilityHotState,
    /// The policy's sprint-lifecycle state.
    pub policy: PolicyHotState,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_core::{
        step_cycle, ControllerConfig, FacilityState, Greedy, NullSink, SprintPolicy, StepInput,
    };
    use dcs_power::DataCenterSpec;
    use dcs_units::Seconds;

    /// The core crash-safety invariant, exercised without HTTP: export
    /// after N steps, restore into a fresh facility, and every subsequent
    /// step is bit-identical to the uninterrupted run.
    #[test]
    fn export_import_round_trip_is_bit_identical() {
        let spec = DataCenterSpec::paper_default().with_scale(2, 50);
        let config = ControllerConfig::default();
        let dt = Seconds::new(1.0);
        let demands: Vec<f64> = (0..40)
            .map(|i| if (10..25).contains(&i) { 2.6 } else { 0.6 })
            .collect();

        // Uninterrupted reference run.
        let mut facility = FacilityState::new(&spec, &config);
        let mut policy = SprintPolicy::new(Box::new(Greedy), &spec);
        let mut reference = Vec::new();
        let mut snapshot = None;
        for (i, &demand) in demands.iter().enumerate() {
            let input = StepInput::nominal(facility.now(), demand, dt);
            let effects = step_cycle(&mut facility, &mut policy, &input, &mut NullSink);
            reference.push(effects.record);
            if i == 19 {
                // Mid-sprint snapshot, serialized through JSON like the
                // real checkpoint path.
                let hot = ServiceHotState {
                    schema: HOT_STATE_SCHEMA.to_string(),
                    decisions: 20,
                    facility: facility.export_hot_state(),
                    policy: policy.export_hot_state(),
                };
                let text = serde_json::to_string(&hot).unwrap();
                snapshot = Some(text);
            }
        }

        // "Restart": fresh facility + policy, import the snapshot, replay
        // the tail.
        let hot: ServiceHotState = serde_json::from_str(&snapshot.unwrap()).unwrap();
        assert_eq!(hot.schema, HOT_STATE_SCHEMA);
        assert_eq!(hot.decisions, 20);
        let mut facility = FacilityState::new(&spec, &config);
        let mut policy = SprintPolicy::new(Box::new(Greedy), &spec);
        facility.import_hot_state(hot.facility);
        policy.import_hot_state(hot.policy);
        for (i, &demand) in demands.iter().enumerate().skip(20) {
            let input = StepInput::nominal(facility.now(), demand, dt);
            let effects = step_cycle(&mut facility, &mut policy, &input, &mut NullSink);
            assert_eq!(
                effects.record, reference[i],
                "step {i} diverged after restore"
            );
        }
    }

    #[test]
    #[should_panic(expected = "different PDU count")]
    fn import_rejects_mismatched_geometry() {
        let spec_a = DataCenterSpec::paper_default().with_scale(2, 50);
        let spec_b = DataCenterSpec::paper_default().with_scale(3, 50);
        let config = ControllerConfig::default();
        let donor = FacilityState::new(&spec_a, &config);
        let mut target = FacilityState::new(&spec_b, &config);
        target.import_hot_state(donor.export_hot_state());
    }
}
