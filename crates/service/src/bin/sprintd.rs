//! `sprintd` — the live sprint-control daemon.
//!
//! ```text
//! sprintd <config.json> [--state-dir DIR] [--port PORT]
//! ```
//!
//! Boots a [`SprintService`] from the given config, prints
//! `listening on <addr>` once the socket is bound, and serves until a
//! `POST /shutdown` — or a `SIGINT`/`SIGTERM` — drains it: in-flight
//! requests finish under the drain deadline, the final checkpoint
//! lands, then the process exits cleanly. With `--state-dir`, hot
//! state is checkpointed there and restored on boot — a crashed daemon
//! restarted on the same directory resumes bit-identically.
//!
//! Exit codes follow the repository convention: 2 usage, 3 config,
//! 4 I/O, 7 service.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use dcs_service::{ServiceConfig, ServiceOptions, SprintService};
use dcs_sim::SimError;

struct Args {
    config_path: PathBuf,
    state_dir: Option<PathBuf>,
    port: u16,
}

const USAGE: &str = "usage: sprintd <config.json> [--state-dir DIR] [--port PORT]";

/// Set from the signal handler; the main loop translates it into a
/// graceful drain. Async-signal-safe: the handler only stores a flag.
static SIGNALED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGNALED.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    // SAFETY: `on_signal` only touches an atomic flag, which is
    // async-signal-safe; the handler stays valid for the process
    // lifetime because it is a plain fn item.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut config_path = None;
    let mut state_dir = None;
    let mut port = 0_u16;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--state-dir" => {
                let value = it.next().ok_or("--state-dir needs a directory")?;
                state_dir = Some(PathBuf::from(value));
            }
            "--port" => {
                let value = it.next().ok_or("--port needs a port number")?;
                port = value.parse().map_err(|_| format!("bad port {value:?}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            _ if arg.starts_with('-') => return Err(format!("unknown flag {arg:?}")),
            _ if config_path.is_none() => config_path = Some(PathBuf::from(arg)),
            _ => return Err(format!("unexpected argument {arg:?}")),
        }
    }
    Ok(Args {
        config_path: config_path.ok_or("missing config path")?,
        state_dir,
        port,
    })
}

fn run(args: &Args) -> Result<(), SimError> {
    let text = std::fs::read_to_string(&args.config_path)
        .map_err(|e| SimError::io(args.config_path.display().to_string(), e.to_string()))?;
    let config = ServiceConfig::from_json(&text)?;
    let options = ServiceOptions {
        state_dir: args.state_dir.clone(),
        chaos: dcs_faults::ChaosSchedule::none(),
    };
    let service = SprintService::spawn(config, options, args.port)?;
    println!("listening on {}", service.addr());
    let _ = std::io::stdout().flush();
    install_signal_handlers();
    while !service.engine_finished() {
        if SIGNALED.swap(false, Ordering::SeqCst) {
            eprintln!("sprintd: signal received, draining");
            service.drain();
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    service.join();
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("sprintd: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sprintd: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
