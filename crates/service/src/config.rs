//! Service configuration: facility geometry, controller knobs, and the
//! serving limits (deadline, queue depth, staleness window, checkpoint
//! cadence).
//!
//! A [`ServiceConfig`] arrives as JSON (a file for `sprintd`, a request
//! body for `POST /reload`), is validated *before* anything acts on it,
//! and is then swapped in atomically — an invalid reload never disturbs
//! the running configuration. Optional fields default via the
//! [`resolved`](ServiceConfig::deadline_ms) accessors so a minimal config
//! is just the facility geometry.

use dcs_core::ControllerConfig;
use dcs_power::DataCenterSpec;
use dcs_sim::{fingerprint_of, SimError};
use dcs_units::Ratio;
use serde::{Deserialize, Serialize};

/// Default per-request decision deadline.
pub const DEFAULT_DEADLINE_MS: u64 = 250;
/// Default bounded-queue depth between the HTTP layer and the engine.
pub const DEFAULT_QUEUE_DEPTH: usize = 64;
/// Default stale-feed window before the watchdog degrades the service.
pub const DEFAULT_STALE_AFTER_MS: u64 = 5_000;
/// Default decisions between hot-state checkpoints.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 16;
/// Default recent-step telemetry window.
pub const DEFAULT_WINDOW_STEPS: usize = 256;
/// Default control period.
pub const DEFAULT_STEP_SECS: f64 = 1.0;
/// Default connection worker-pool size.
pub const DEFAULT_WORKERS: usize = 16;
/// Default bounded pending-connection queue depth (the hard connection
/// limit is `workers + accept_queue`).
pub const DEFAULT_ACCEPT_QUEUE: usize = 64;
/// Default graceful-drain deadline.
pub const DEFAULT_DRAIN_DEADLINE_MS: u64 = 5_000;
/// Default replay-cache depth (idempotent-retry window, in decisions).
pub const DEFAULT_REPLAY_CACHE: usize = 512;
/// Default total per-request read budget (slowloris guard).
pub const DEFAULT_READ_BUDGET_MS: u64 = 5_000;

/// The live service's configuration. Facility geometry is required;
/// everything else defaults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// PDU count.
    pub pdus: usize,
    /// Servers per PDU.
    pub servers_per_pdu: usize,
    /// DC-level breaker headroom in percent (default 10).
    pub dc_headroom_percent: Option<f64>,
    /// Facility PUE (default 1.53).
    pub pue: Option<f64>,
    /// Controller configuration (default: the paper's).
    pub controller: Option<ControllerConfig>,
    /// Control period in seconds (default 1.0).
    pub step_secs: Option<f64>,
    /// Per-request decision deadline in milliseconds (default 250).
    pub deadline_ms: Option<u64>,
    /// Bounded request-queue depth (default 64).
    pub queue_depth: Option<usize>,
    /// Stale-feed window in milliseconds before the watchdog degrades
    /// the service (default 5000).
    pub stale_after_ms: Option<u64>,
    /// Decisions between hot-state checkpoints (default 16; 1 makes every
    /// decision durable).
    pub checkpoint_every: Option<u64>,
    /// Recent-step telemetry window (default 256).
    pub window_steps: Option<usize>,
    /// Connection worker-pool size (default 16; fixed at boot — a reload
    /// does not resize the pool).
    #[serde(default)]
    pub workers: Option<usize>,
    /// Pending-connection queue depth (default 64; fixed at boot). With
    /// `workers` this is the hard connection limit — beyond it the
    /// acceptor answers a typed `503 overloaded` immediately.
    #[serde(default)]
    pub accept_queue: Option<usize>,
    /// Graceful-drain deadline in milliseconds (default 5000): how long
    /// a shutdown waits for in-flight requests before checkpointing.
    #[serde(default)]
    pub drain_deadline_ms: Option<u64>,
    /// Replay-cache depth in decisions (default 512): how far back an
    /// idempotent retry (`expect_index`) can be answered from cache.
    #[serde(default)]
    pub replay_cache: Option<usize>,
    /// Total per-request read budget in milliseconds (default 5000): a
    /// peer that trickles a request slower than this gets a typed `408`.
    #[serde(default)]
    pub read_budget_ms: Option<u64>,
}

impl ServiceConfig {
    /// A minimal config for the given facility geometry, everything else
    /// at defaults.
    #[must_use]
    pub fn for_facility(pdus: usize, servers_per_pdu: usize) -> ServiceConfig {
        ServiceConfig {
            pdus,
            servers_per_pdu,
            dc_headroom_percent: None,
            pue: None,
            controller: None,
            step_secs: None,
            deadline_ms: None,
            queue_depth: None,
            stale_after_ms: None,
            checkpoint_every: None,
            window_steps: None,
            workers: None,
            accept_queue: None,
            drain_deadline_ms: None,
            replay_cache: None,
            read_budget_ms: None,
        }
    }

    /// Parses and validates a config from JSON.
    pub fn from_json(text: &str) -> Result<ServiceConfig, SimError> {
        let config: ServiceConfig = serde_json::from_str(text)
            .map_err(|e| SimError::config(format!("malformed config: {e}")))?;
        config.validate()?;
        Ok(config)
    }

    /// Validates every field, including the embedded controller config's
    /// plausibility. Runs before the config is acted on — a service never
    /// boots, and a reload never swaps, on an invalid config.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.pdus == 0 {
            return Err(SimError::config("pdus must be at least 1"));
        }
        if self.servers_per_pdu == 0 {
            return Err(SimError::config("servers_per_pdu must be at least 1"));
        }
        if let Some(h) = self.dc_headroom_percent {
            if !h.is_finite() || h < 0.0 {
                return Err(SimError::config(
                    "dc_headroom_percent must be finite and non-negative",
                ));
            }
        }
        if let Some(pue) = self.pue {
            if !pue.is_finite() || pue < 1.0 {
                return Err(SimError::config("pue must be finite and at least 1"));
            }
        }
        if let Some(step) = self.step_secs {
            if !step.is_finite() || step <= 0.0 {
                return Err(SimError::config("step_secs must be finite and positive"));
            }
        }
        if self.deadline_ms == Some(0) {
            return Err(SimError::config("deadline_ms must be at least 1"));
        }
        if self.queue_depth == Some(0) {
            return Err(SimError::config("queue_depth must be at least 1"));
        }
        if self.stale_after_ms == Some(0) {
            return Err(SimError::config("stale_after_ms must be at least 1"));
        }
        if self.checkpoint_every == Some(0) {
            return Err(SimError::config("checkpoint_every must be at least 1"));
        }
        if self.workers == Some(0) {
            return Err(SimError::config("workers must be at least 1"));
        }
        if self.accept_queue == Some(0) {
            return Err(SimError::config("accept_queue must be at least 1"));
        }
        if self.drain_deadline_ms == Some(0) {
            return Err(SimError::config("drain_deadline_ms must be at least 1"));
        }
        if self.replay_cache == Some(0) {
            return Err(SimError::config("replay_cache must be at least 1"));
        }
        if self.read_budget_ms == Some(0) {
            return Err(SimError::config("read_budget_ms must be at least 1"));
        }
        if let Some(cfg) = &self.controller {
            if !cfg.burst_threshold.is_finite() || cfg.burst_threshold <= 0.0 {
                return Err(SimError::config(
                    "controller.burst_threshold must be finite and positive",
                ));
            }
            if !cfg.tes_minutes.is_finite() || cfg.tes_minutes <= 0.0 {
                return Err(SimError::config(
                    "controller.tes_minutes must be finite and positive",
                ));
            }
        }
        Ok(())
    }

    /// Builds the facility spec this config describes.
    #[must_use]
    pub fn spec(&self) -> DataCenterSpec {
        DataCenterSpec::paper_default()
            .with_scale(self.pdus, self.servers_per_pdu)
            .with_dc_headroom(Ratio::new(self.dc_headroom_percent.unwrap_or(10.0) / 100.0))
            .with_pue(self.pue.unwrap_or(1.53))
    }

    /// The controller configuration (defaulted).
    #[must_use]
    pub fn controller(&self) -> ControllerConfig {
        self.controller.clone().unwrap_or_default()
    }

    /// The control period in seconds (defaulted).
    #[must_use]
    pub fn step_secs(&self) -> f64 {
        self.step_secs.unwrap_or(DEFAULT_STEP_SECS)
    }

    /// The per-request decision deadline (defaulted).
    #[must_use]
    pub fn deadline_ms(&self) -> u64 {
        self.deadline_ms.unwrap_or(DEFAULT_DEADLINE_MS)
    }

    /// The bounded request-queue depth (defaulted).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.unwrap_or(DEFAULT_QUEUE_DEPTH)
    }

    /// The stale-feed window (defaulted).
    #[must_use]
    pub fn stale_after_ms(&self) -> u64 {
        self.stale_after_ms.unwrap_or(DEFAULT_STALE_AFTER_MS)
    }

    /// Decisions between checkpoints (defaulted).
    #[must_use]
    pub fn checkpoint_every(&self) -> u64 {
        self.checkpoint_every.unwrap_or(DEFAULT_CHECKPOINT_EVERY)
    }

    /// The recent-step telemetry window (defaulted).
    #[must_use]
    pub fn window_steps(&self) -> usize {
        self.window_steps.unwrap_or(DEFAULT_WINDOW_STEPS)
    }

    /// The connection worker-pool size (defaulted).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.unwrap_or(DEFAULT_WORKERS)
    }

    /// The pending-connection queue depth (defaulted).
    #[must_use]
    pub fn accept_queue(&self) -> usize {
        self.accept_queue.unwrap_or(DEFAULT_ACCEPT_QUEUE)
    }

    /// The graceful-drain deadline (defaulted).
    #[must_use]
    pub fn drain_deadline_ms(&self) -> u64 {
        self.drain_deadline_ms.unwrap_or(DEFAULT_DRAIN_DEADLINE_MS)
    }

    /// The replay-cache depth (defaulted).
    #[must_use]
    pub fn replay_cache(&self) -> usize {
        self.replay_cache.unwrap_or(DEFAULT_REPLAY_CACHE)
    }

    /// The total per-request read budget (defaulted).
    #[must_use]
    pub fn read_budget_ms(&self) -> u64 {
        self.read_budget_ms.unwrap_or(DEFAULT_READ_BUDGET_MS)
    }

    /// `true` if `other` describes the same plant — same geometry and
    /// controller configuration — so hot state exported under `self`
    /// imports cleanly under `other` (service-level knobs are free to
    /// differ).
    #[must_use]
    pub fn same_plant(&self, other: &ServiceConfig) -> bool {
        self.pdus == other.pdus
            && self.servers_per_pdu == other.servers_per_pdu
            && self.dc_headroom_percent == other.dc_headroom_percent
            && self.pue == other.pue
            && self.controller() == other.controller()
            && self.step_secs() == other.step_secs()
    }

    /// Fingerprint of the plant-defining inputs, used to tag hot-state
    /// checkpoints: a snapshot only restores into the facility it was
    /// exported from.
    #[must_use]
    pub fn plant_fingerprint(&self) -> u64 {
        fingerprint_of(&(
            self.pdus as u64,
            self.servers_per_pdu as u64,
            self.dc_headroom_percent.unwrap_or(10.0),
            self.pue.unwrap_or(1.53),
            serde_json::to_string(&self.controller()).unwrap_or_default(),
            self.step_secs(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_json_parses_with_defaults() {
        let config = ServiceConfig::from_json(r#"{"pdus":2,"servers_per_pdu":50}"#).unwrap();
        assert_eq!(config.pdus, 2);
        assert_eq!(config.deadline_ms(), DEFAULT_DEADLINE_MS);
        assert_eq!(config.queue_depth(), DEFAULT_QUEUE_DEPTH);
        assert_eq!(config.step_secs(), 1.0);
        assert_eq!(config.spec().total_servers(), 100);
    }

    #[test]
    fn invalid_fields_are_config_errors() {
        for (json, needle) in [
            (r#"{"pdus":0,"servers_per_pdu":50}"#, "pdus"),
            (r#"{"pdus":2,"servers_per_pdu":0}"#, "servers_per_pdu"),
            (r#"{"pdus":2,"servers_per_pdu":5,"pue":0.5}"#, "pue"),
            (
                r#"{"pdus":2,"servers_per_pdu":5,"deadline_ms":0}"#,
                "deadline_ms",
            ),
            (
                r#"{"pdus":2,"servers_per_pdu":5,"queue_depth":0}"#,
                "queue_depth",
            ),
            (
                r#"{"pdus":2,"servers_per_pdu":5,"step_secs":-1.0}"#,
                "step_secs",
            ),
            (
                r#"{"pdus":2,"servers_per_pdu":5,"checkpoint_every":0}"#,
                "checkpoint_every",
            ),
            (r#"{"pdus":2,"servers_per_pdu":5,"workers":0}"#, "workers"),
            (
                r#"{"pdus":2,"servers_per_pdu":5,"accept_queue":0}"#,
                "accept_queue",
            ),
            (
                r#"{"pdus":2,"servers_per_pdu":5,"drain_deadline_ms":0}"#,
                "drain_deadline_ms",
            ),
            (
                r#"{"pdus":2,"servers_per_pdu":5,"replay_cache":0}"#,
                "replay_cache",
            ),
            (
                r#"{"pdus":2,"servers_per_pdu":5,"read_budget_ms":0}"#,
                "read_budget_ms",
            ),
        ] {
            let err = ServiceConfig::from_json(json).unwrap_err();
            assert_eq!(err.exit_code(), 3, "{json}");
            assert!(err.to_string().contains(needle), "{json}: {err}");
        }
    }

    #[test]
    fn plant_fingerprint_ignores_service_knobs() {
        let a = ServiceConfig::for_facility(2, 50);
        let mut b = a.clone();
        b.deadline_ms = Some(10);
        b.queue_depth = Some(1);
        assert_eq!(a.plant_fingerprint(), b.plant_fingerprint());
        assert!(a.same_plant(&b));
        let mut c = a.clone();
        c.pdus = 3;
        assert_ne!(a.plant_fingerprint(), c.plant_fingerprint());
        assert!(!a.same_plant(&c));
    }
}
