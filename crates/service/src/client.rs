//! A hardened `sprintd` client: deadline-bounded requests, capped
//! exponential backoff with deterministic jitter, a software circuit
//! breaker, and idempotent `/step` retries.
//!
//! The dangerous failure for a sprint-control client is the *ambiguous*
//! one: the request was sent, the connection died, and the caller cannot
//! know whether the decision was applied. A naive retry double-advances
//! the plant — two control periods burned for one demand sample.
//! [`RetryClient`] closes that hole with the `expect_index` protocol:
//! every `/step` carries the decision index the client expects to land
//! on, learned from `/status` and advanced only on confirmed responses.
//! A retry of an applied request is answered from the server's replay
//! cache (`replayed: true`, plant untouched); a stale expectation is a
//! typed `409` that the client resolves by re-reading `/status`. Either
//! way the plant advances exactly once per intended decision.
//!
//! The circuit breaker sits in front of all of it: after
//! `breaker_threshold` consecutive request failures the client stops
//! hammering a struggling service and fails fast until `breaker_cooldown`
//! has passed, then probes with a single half-open attempt.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::protocol::{ErrorBody, StatusBody, StepBody, StepResponse};

/// Retry/deadline policy for a [`RetryClient`].
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Per-attempt socket deadline (connect, read, and write).
    pub deadline: Duration,
    /// Retry attempts after the first try (0 disables retries).
    pub max_retries: u32,
    /// First backoff delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Consecutive failed requests that open the circuit breaker.
    pub breaker_threshold: u32,
    /// How long the breaker stays open before a half-open probe.
    pub breaker_cooldown: Duration,
    /// Requests served per connection before the client rotates to a
    /// fresh one (0 keeps connections warm forever). Rotation bounds the
    /// blast radius of a bad path and, under the chaos proxy, keeps new
    /// per-connection fault plans arriving instead of letting the soak
    /// settle on one lucky clean connection.
    pub rotate_after: u32,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig {
            deadline: Duration::from_secs(2),
            max_retries: 8,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(250),
            breaker_threshold: 8,
            breaker_cooldown: Duration::from_millis(500),
            rotate_after: 0,
            seed: 0x005E_EDC1_1E47,
        }
    }
}

/// Why a client call failed.
#[derive(Debug, Clone)]
pub enum ClientError {
    /// The circuit breaker is open; no request was sent.
    BreakerOpen {
        /// Time until the next half-open probe is allowed.
        retry_in: Duration,
    },
    /// Every attempt failed on the transport or with a retryable status.
    Exhausted {
        /// Attempts made (first try included).
        attempts: u32,
        /// The last failure, human-readable.
        last: String,
    },
    /// The service answered with a typed, non-retryable error.
    Rejected {
        /// HTTP status.
        status: u16,
        /// The typed error kind (`bad_request`, `draining`, …).
        kind: String,
        /// Human-readable context.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::BreakerOpen { retry_in } => {
                write!(f, "circuit breaker open (retry in {retry_in:?})")
            }
            ClientError::Exhausted { attempts, last } => {
                write!(f, "exhausted {attempts} attempts: {last}")
            }
            ClientError::Rejected {
                status,
                kind,
                message,
            } => write!(f, "{status} {kind}: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Since-construction client counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct ClientStats {
    /// Requests attempted (each retry counts).
    pub attempts: u64,
    /// Retries after a transport failure or retryable status.
    pub retries: u64,
    /// `/step` responses served from the server's replay cache — each
    /// one is an ambiguous retry that did *not* double-advance the plant.
    pub replays: u64,
    /// `409` responses resolved by re-reading `/status`.
    pub resyncs: u64,
    /// Calls rejected locally by the open circuit breaker.
    pub breaker_rejections: u64,
}

/// The client: one logical connection to `sprintd`, reconnected as
/// needed, with idempotent `/step` semantics.
pub struct RetryClient {
    addr: SocketAddr,
    config: RetryConfig,
    conn: Option<BufReader<TcpStream>>,
    conn_requests: u32,
    rng: u64,
    consecutive_failures: u32,
    breaker_open_until: Option<Instant>,
    next_index: Option<u64>,
    stats: ClientStats,
}

/// One attempt's outcome, before retry policy is applied.
enum Attempt {
    /// Parsed status + body; connection stays warm unless it closed.
    Response(u16, Vec<u8>),
    /// The transport failed somewhere ambiguous; retry (idempotently).
    Transport(String),
}

/// Parses a JSON payload (the vendored `serde_json` is `from_str`-only).
fn parse_json<T: serde::Deserialize>(payload: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("non-UTF-8 body: {e}"))?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

impl RetryClient {
    /// Builds a client for the service at `addr` with default policy.
    #[must_use]
    pub fn new(addr: SocketAddr) -> RetryClient {
        RetryClient::with_config(addr, RetryConfig::default())
    }

    /// Builds a client with an explicit policy.
    #[must_use]
    pub fn with_config(addr: SocketAddr, config: RetryConfig) -> RetryClient {
        let mut rng = config.seed ^ 0x9E37_79B9_7F4A_7C15;
        if rng == 0 {
            rng = 1;
        }
        RetryClient {
            addr,
            config,
            conn: None,
            conn_requests: 0,
            rng,
            consecutive_failures: 0,
            breaker_open_until: None,
            next_index: None,
            stats: ClientStats::default(),
        }
    }

    /// The client's counters.
    #[must_use]
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The decision index the next `/step` will claim, if known.
    #[must_use]
    pub fn next_index(&self) -> Option<u64> {
        self.next_index
    }

    /// Runs one idempotent control step: sends `demand` tagged with the
    /// expected decision index, retrying ambiguous failures without ever
    /// double-advancing the plant.
    pub fn step(&mut self, demand: f64) -> Result<StepResponse, ClientError> {
        self.check_breaker()?;
        if self.next_index.is_none() {
            let status = self.request_with_retries("GET", "/status", None)?;
            self.next_index = Some(status_decisions(&status)?);
        }
        let mut attempts = 0_u32;
        let mut last = String::from("no attempts made");
        while attempts <= self.config.max_retries {
            if attempts > 0 {
                self.stats.retries += 1;
                self.backoff(attempts);
            }
            attempts += 1;
            let expect = self.next_index;
            let body = serde_json::to_string(&StepBody {
                demand,
                dt_secs: None,
                expect_index: expect,
            })
            .map_err(|e| ClientError::Rejected {
                status: 0,
                kind: "encode".to_string(),
                message: e.to_string(),
            })?;
            match self.attempt("POST", "/step", Some(body.as_bytes())) {
                Attempt::Transport(why) => {
                    last = why;
                    // Ambiguous: the server may have applied the step.
                    // The expect_index on the retry makes this safe.
                }
                Attempt::Response(200, payload) => {
                    let step: StepResponse = match parse_json(&payload) {
                        Ok(step) => step,
                        Err(e) => {
                            last = format!("bad step response: {e}");
                            continue;
                        }
                    };
                    if step.replayed {
                        self.stats.replays += 1;
                    }
                    if let Some(index) = step.decision_index {
                        self.next_index = Some(index + 1);
                    }
                    self.succeed();
                    return Ok(step);
                }
                Attempt::Response(409, _) => {
                    // The expectation is stale (another writer, or an
                    // evicted replay entry): re-learn and retry.
                    self.stats.resyncs += 1;
                    match self.request_once("GET", "/status") {
                        Ok(status) => match status_decisions(&status) {
                            Ok(decisions) => self.next_index = Some(decisions),
                            Err(e) => last = e.to_string(),
                        },
                        Err(why) => last = why,
                    }
                }
                Attempt::Response(status, payload) if retryable(status, &payload) => {
                    last = describe(status, &payload);
                }
                Attempt::Response(status, payload) => {
                    self.fail();
                    return Err(rejected(status, &payload));
                }
            }
        }
        self.fail();
        Err(ClientError::Exhausted { attempts, last })
    }

    /// Fetches `/status` with full retry policy.
    pub fn status(&mut self) -> Result<StatusBody, ClientError> {
        self.check_breaker()?;
        let payload = self.request_with_retries("GET", "/status", None)?;
        parse_json(&payload).map_err(|message| ClientError::Rejected {
            status: 0,
            kind: "decode".to_string(),
            message,
        })
    }

    /// Asks the service to drain (`POST /shutdown`). Not retried: a
    /// transport failure after the send is reported, not re-sent.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.check_breaker()?;
        match self.attempt("POST", "/shutdown", None) {
            Attempt::Response(200, _) => {
                self.succeed();
                Ok(())
            }
            Attempt::Response(status, payload) => {
                self.fail();
                Err(rejected(status, &payload))
            }
            Attempt::Transport(why) => {
                self.fail();
                Err(ClientError::Exhausted {
                    attempts: 1,
                    last: why,
                })
            }
        }
    }

    fn check_breaker(&mut self) -> Result<(), ClientError> {
        if let Some(until) = self.breaker_open_until {
            let now = Instant::now();
            if now < until {
                self.stats.breaker_rejections += 1;
                return Err(ClientError::BreakerOpen {
                    retry_in: until - now,
                });
            }
            // Half-open: allow this call through as the probe. The
            // breaker re-opens on failure via `fail()`.
            self.breaker_open_until = None;
        }
        Ok(())
    }

    fn succeed(&mut self) {
        self.consecutive_failures = 0;
        self.breaker_open_until = None;
    }

    fn fail(&mut self) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.consecutive_failures >= self.config.breaker_threshold {
            self.breaker_open_until = Some(Instant::now() + self.config.breaker_cooldown);
        }
    }

    /// Sleeps the capped exponential backoff for retry `attempt`, with
    /// ±50% deterministic jitter so synchronized clients decorrelate.
    fn backoff(&mut self, attempt: u32) {
        let exp = self
            .config
            .backoff_base
            .saturating_mul(1_u32 << attempt.min(16))
            .min(self.config.backoff_cap);
        let jitter = xorshift64(&mut self.rng) % 1000;
        let scaled = exp.mul_f64(0.5 + (jitter as f64) / 1000.0);
        std::thread::sleep(scaled);
    }

    /// A bodyless request with full retry policy (for `/status`).
    fn request_with_retries(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<Vec<u8>, ClientError> {
        let mut attempts = 0_u32;
        let mut last = String::from("no attempts made");
        while attempts <= self.config.max_retries {
            if attempts > 0 {
                self.stats.retries += 1;
                self.backoff(attempts);
            }
            attempts += 1;
            match self.attempt(method, path, body) {
                Attempt::Response(200, payload) => {
                    self.succeed();
                    return Ok(payload);
                }
                Attempt::Response(status, payload) if retryable(status, &payload) => {
                    last = describe(status, &payload);
                }
                Attempt::Response(status, payload) => {
                    self.fail();
                    return Err(rejected(status, &payload));
                }
                Attempt::Transport(why) => last = why,
            }
        }
        self.fail();
        Err(ClientError::Exhausted { attempts, last })
    }

    /// One try of a request, no retries (used for 409 resyncs where the
    /// caller handles failure itself).
    fn request_once(&mut self, method: &str, path: &str) -> Result<Vec<u8>, String> {
        match self.attempt(method, path, None) {
            Attempt::Response(200, payload) => Ok(payload),
            Attempt::Response(status, payload) => Err(describe(status, &payload)),
            Attempt::Transport(why) => Err(why),
        }
    }

    /// One request/response exchange over the (re)connected stream.
    fn attempt(&mut self, method: &str, path: &str, body: Option<&[u8]>) -> Attempt {
        self.stats.attempts += 1;
        let mut conn = match self.conn.take() {
            Some(conn) => conn,
            None => match self.connect() {
                Ok(conn) => {
                    self.conn_requests = 0;
                    conn
                }
                Err(why) => return Attempt::Transport(why),
            },
        };
        let body = body.unwrap_or(&[]);
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: sprintd\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        let mut message = Vec::with_capacity(head.len() + body.len());
        message.extend_from_slice(head.as_bytes());
        message.extend_from_slice(body);
        if let Err(e) = conn
            .get_mut()
            .write_all(&message)
            .and_then(|()| conn.get_mut().flush())
        {
            return Attempt::Transport(format!("write: {e}"));
        }
        match read_response(&mut conn, self.config.deadline) {
            Ok((status, payload, close)) => {
                self.conn_requests = self.conn_requests.saturating_add(1);
                let rotate =
                    self.config.rotate_after > 0 && self.conn_requests >= self.config.rotate_after;
                if !close && !rotate {
                    self.conn = Some(conn);
                }
                Attempt::Response(status, payload)
            }
            Err(why) => Attempt::Transport(why),
        }
    }

    fn connect(&self) -> Result<BufReader<TcpStream>, String> {
        let stream = TcpStream::connect_timeout(&self.addr, self.config.deadline)
            .map_err(|e| format!("connect: {e}"))?;
        stream
            .set_nodelay(true)
            .map_err(|e| format!("nodelay: {e}"))?;
        stream
            .set_read_timeout(Some(self.config.deadline))
            .map_err(|e| format!("read timeout: {e}"))?;
        stream
            .set_write_timeout(Some(self.config.deadline))
            .map_err(|e| format!("write timeout: {e}"))?;
        Ok(BufReader::new(stream))
    }
}

/// Reads `decisions` out of a raw `/status` payload.
fn status_decisions(payload: &[u8]) -> Result<u64, ClientError> {
    let status: StatusBody = parse_json(payload).map_err(|message| ClientError::Rejected {
        status: 0,
        kind: "decode".to_string(),
        message,
    })?;
    Ok(status.decisions)
}

/// Whether a typed error status is worth retrying: transient server-side
/// pressure, not a caller bug.
fn retryable(status: u16, payload: &[u8]) -> bool {
    match status {
        429 => true,
        408 => true,
        503 => {
            // `draining` is terminal for this service instance; the
            // other 503 kinds (overloaded, deadline_exceeded,
            // decision_failed) are transient.
            error_kind(payload).as_deref() != Some("draining")
        }
        _ => false,
    }
}

fn error_kind(payload: &[u8]) -> Option<String> {
    parse_json::<ErrorBody>(payload)
        .ok()
        .map(|body| body.error.kind)
}

fn describe(status: u16, payload: &[u8]) -> String {
    match parse_json::<ErrorBody>(payload) {
        Ok(body) => format!("{status} {}: {}", body.error.kind, body.error.message),
        Err(_) => format!("{status} (unparseable body)"),
    }
}

fn rejected(status: u16, payload: &[u8]) -> ClientError {
    match parse_json::<ErrorBody>(payload) {
        Ok(body) => ClientError::Rejected {
            status,
            kind: body.error.kind,
            message: body.error.message,
        },
        Err(_) => ClientError::Rejected {
            status,
            kind: "unparseable".to_string(),
            message: format!("{status} with an unparseable body"),
        },
    }
}

/// Reads one HTTP/1.1 response (status line, headers, content-length
/// body) under `deadline`. Any malformed or torn frame is a transport
/// error — the caller reconnects and (idempotently) retries.
fn read_response(
    reader: &mut BufReader<TcpStream>,
    deadline: Duration,
) -> Result<(u16, Vec<u8>, bool), String> {
    let started = Instant::now();
    let mut line = String::new();
    read_line_bounded(reader, &mut line, started, deadline)?;
    let mut parts = line.split_whitespace();
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(format!("bad status line {line:?}"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("bad status line {line:?}"));
    }
    let status: u16 = code
        .parse()
        .map_err(|_| format!("bad status code {code:?}"))?;
    let mut content_length = 0_usize;
    let mut close = false;
    loop {
        let mut header = String::new();
        read_line_bounded(reader, &mut header, started, deadline)?;
        let trimmed = header.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(format!("bad header {trimmed:?}"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| format!("bad content-length {value:?}"))?;
            if content_length > crate::http::MAX_BODY_BYTES {
                return Err(format!("response body too large ({content_length})"));
            }
        } else if name == "connection" && value.eq_ignore_ascii_case("close") {
            close = true;
        }
    }
    let mut payload = vec![0_u8; content_length];
    let mut filled = 0_usize;
    while filled < content_length {
        if started.elapsed() > deadline {
            return Err("response body overran the deadline".to_string());
        }
        match reader.read(&mut payload[filled..]) {
            Ok(0) => return Err("response truncated".to_string()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("read body: {e}")),
        }
    }
    Ok((status, payload, close))
}

fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    started: Instant,
    deadline: Duration,
) -> Result<(), String> {
    if started.elapsed() > deadline {
        return Err("response overran the deadline".to_string());
    }
    match reader.read_line(line) {
        Ok(0) => Err("connection closed mid-response".to_string()),
        Ok(_) if line.len() > crate::http::MAX_HEAD_BYTES => {
            Err("response header line too long".to_string())
        }
        Ok(_) => Ok(()),
        Err(e) => Err(format!("read: {e}")),
    }
}
