//! The service front end: listener, connection worker pool, watchdog,
//! drain coordinator, and the [`SprintService`] handle that owns them.
//!
//! Request flow for `POST /step`:
//!
//! 1. **Draining** → `503 draining`: the service refuses new decisions
//!    while in-flight requests finish and the final checkpoint lands.
//! 2. **Degraded** → `200` with the fail-safe actuation (normal core
//!    count, no sprint) and `degraded: true`. Degraded serving *answers*,
//!    it never errors — a control plane that stops responding is worse
//!    than one that stops sprinting.
//! 3. **Serving** → the request is offered to the engine's bounded queue
//!    (`try_send`; a full queue is `429 backpressure`, never an unbounded
//!    pile-up), then awaited with the per-request deadline
//!    (`recv_timeout`; an overrun is a typed `503 deadline_exceeded` *and*
//!    flips the service to Degraded until the watchdog's liveness probe
//!    proves the engine healthy again).
//!
//! Connections are served by a fixed worker pool behind a bounded
//! hand-off queue (see [`crate::pool`]): the hard connection limit is
//! `workers + accept_queue`, and a flood beyond it degrades into
//! immediate typed `503 overloaded` rejections instead of thread
//! exhaustion. Each connection runs with a short socket read tick (the
//! slowloris poll), a total per-request read budget, and a write
//! deadline, so no peer — slow, stalled, or malicious — can park a
//! worker indefinitely.
//!
//! A graceful drain (a `POST /shutdown`, a signal, or
//! [`SprintService::shutdown`]) flips the mode first so new work is
//! refused with typed statuses, then waits — on a dedicated coordinator
//! thread, because the trigger may itself be an in-flight request — for
//! in-flight requests to finish under `drain_deadline_ms`, asks the
//! engine for its final checkpoint, and only then stops the threads.
//!
//! The watchdog also tracks feed freshness: if no `/step` has arrived
//! within `stale_after_ms`, the service degrades (`stale_feed`) on the
//! grounds that a sprint decision computed against a silent feed is
//! stale physics; it recovers as soon as traffic resumes and the engine
//! answers a probe.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dcs_faults::ChaosSchedule;
use dcs_sim::SimError;

use crate::config::ServiceConfig;
use crate::engine::{open_store, run_engine, EngineMsg, Mode, Shared, StepFailure};
use crate::http::{read_request, render_json, write_json, ReadOutcome, Request};
use crate::pool::{self, ConnContext, ConnPool};
use crate::protocol::{
    DegradedFlags, DrainStatus, ErrorBody, HealthBody, ReloadResponse, ServiceCounters,
    ShutdownResponse, StatusBody, StepBody, StepResponse, STATUS_SCHEMA,
};

/// How often the watchdog re-evaluates staleness and probes the engine.
const WATCHDOG_TICK: Duration = Duration::from_millis(15);
/// Keep-alive patience: a connection idle past this (no request bytes)
/// is closed to give its worker back to the pool.
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);
/// How long a reload (or the final drain checkpoint) waits for the
/// engine to acknowledge.
const RELOAD_TIMEOUT: Duration = Duration::from_secs(10);
/// Socket read tick: how often a blocked read wakes to poll shutdown,
/// flush pipelined responses, and check the slowloris budget.
const READ_TICK: Duration = Duration::from_millis(100);
/// Per-write socket deadline; a peer that stops reading its responses
/// loses the connection rather than parking a worker.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// Poll interval for the drain coordinator's in-flight wait.
const DRAIN_POLL: Duration = Duration::from_millis(5);

/// Boot options for [`SprintService::spawn`].
#[derive(Debug, Default)]
pub struct ServiceOptions {
    /// Checkpoint directory; `None` serves without persistence.
    pub state_dir: Option<PathBuf>,
    /// Injected decision faults (tests/ci); [`ChaosSchedule::none`] in
    /// production.
    pub chaos: ChaosSchedule,
}

/// A running sprint-control service.
pub struct SprintService {
    addr: SocketAddr,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    tx: SyncSender<EngineMsg>,
    engine: Option<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl SprintService {
    /// Validates `config`, restores any checkpointed hot state, binds
    /// `127.0.0.1:port` (0 picks a free port), and starts serving.
    pub fn spawn(
        config: ServiceConfig,
        options: ServiceOptions,
        port: u16,
    ) -> Result<SprintService, SimError> {
        config.validate()?;
        let (store, restored) = match options.state_dir.as_deref() {
            Some(dir) => {
                let (store, restored) = open_store(dir, &config)?;
                (Some(store), restored)
            }
            None => (None, None),
        };
        let listener = TcpListener::bind(("127.0.0.1", port))
            .map_err(|e| SimError::service(format!("bind 127.0.0.1:{port}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| SimError::service(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| SimError::service(format!("set_nonblocking: {e}")))?;

        let config = Arc::new(config);
        let shared = Arc::new(Shared::new(config.clone()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = sync_channel::<EngineMsg>(config.queue_depth());

        let engine = {
            let shared = shared.clone();
            let state_dir = options.state_dir.clone();
            let chaos = options.chaos.clone();
            std::thread::Builder::new()
                .name("sprintd-engine".to_string())
                .spawn(move || {
                    run_engine(&rx, &shared, state_dir.as_deref(), &chaos, store, restored);
                })
                .map_err(|e| SimError::service(format!("spawn engine: {e}")))?
        };
        let watchdog = {
            let shared = shared.clone();
            let shutdown = shutdown.clone();
            let tx = tx.clone();
            std::thread::Builder::new()
                .name("sprintd-watchdog".to_string())
                .spawn(move || run_watchdog(&shared, &shutdown, &tx))
                .map_err(|e| SimError::service(format!("spawn watchdog: {e}")))?
        };
        let ctx = Arc::new(ConnContext {
            shared: shared.clone(),
            shutdown: shutdown.clone(),
            tx: tx.clone(),
        });
        let conn_pool = ConnPool::spawn(config.workers(), config.accept_queue(), ctx.clone())
            .map_err(|e| SimError::service(format!("spawn worker pool: {e}")))?;
        let acceptor = std::thread::Builder::new()
            .name("sprintd-accept".to_string())
            .spawn(move || run_acceptor(&listener, conn_pool, &ctx))
            .map_err(|e| SimError::service(format!("spawn acceptor: {e}")))?;

        Ok(SprintService {
            addr,
            shared,
            shutdown,
            tx,
            engine: Some(engine),
            acceptor: Some(acceptor),
            watchdog: Some(watchdog),
        })
    }

    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state block (tests poke at mode/counters through this).
    #[must_use]
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Starts a graceful drain without blocking: new work is refused
    /// immediately, in-flight requests finish under the drain deadline,
    /// then the final checkpoint lands and the threads stop. Idempotent.
    pub fn drain(&self) {
        begin_drain(self.shared.clone(), self.shutdown.clone(), self.tx.clone());
    }

    /// `true` once the engine thread has exited (the drain's final
    /// checkpoint is on disk, or the engine died).
    #[must_use]
    pub fn engine_finished(&self) -> bool {
        self.engine.as_ref().is_none_or(JoinHandle::is_finished)
    }

    /// Drains and stops the service: in-flight requests finish, the
    /// final checkpoint lands, threads are joined.
    pub fn shutdown(mut self) {
        self.drain();
        self.wait_drained();
        self.join_threads();
    }

    /// Blocks until the service drains (a `POST /shutdown`, a signal
    /// relayed via [`SprintService::drain`], or a dropped engine). Used
    /// by `sprintd`'s main thread.
    pub fn join(mut self) {
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
        self.shutdown.store(true, Ordering::SeqCst);
        self.join_threads();
    }

    /// Waits (bounded) for the drain coordinator to set the shutdown
    /// flag: the drain deadline plus the engine's checkpoint timeout.
    fn wait_drained(&self) {
        let cap = Duration::from_millis(self.shared.current_config().drain_deadline_ms())
            + RELOAD_TIMEOUT
            + Duration::from_secs(1);
        let start = Instant::now();
        while !self.shutdown.load(Ordering::SeqCst) && start.elapsed() < cap {
            std::thread::sleep(DRAIN_POLL);
        }
    }

    fn join_threads(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for SprintService {
    fn drop(&mut self) {
        if self.engine.is_some() {
            begin_drain(self.shared.clone(), self.shutdown.clone(), self.tx.clone());
            self.wait_drained();
            self.join_threads();
        }
    }
}

/// Starts the graceful drain (idempotent): flips the mode so new work is
/// refused with typed statuses, then hands the wait to a coordinator
/// thread — the caller may itself be an in-flight request, so it must
/// not wait for in-flight requests to reach zero.
fn begin_drain(shared: Arc<Shared>, shutdown: Arc<AtomicBool>, tx: SyncSender<EngineMsg>) {
    shared.set_mode(Mode::Draining);
    let now = shared.uptime_ms().min(u64::MAX - 1);
    if shared
        .drain_started_ms
        .compare_exchange(u64::MAX, now, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return; // a coordinator is already running
    }
    let spawned = {
        let shared = shared.clone();
        let shutdown = shutdown.clone();
        let tx = tx.clone();
        std::thread::Builder::new()
            .name("sprintd-drain".to_string())
            .spawn(move || run_drain(&shared, &shutdown, &tx))
    };
    if spawned.is_err() {
        // Out of threads: drain inline. The caller blocks for the drain
        // duration, but the shutdown still completes correctly.
        run_drain(&shared, &shutdown, &tx);
    }
}

/// The drain coordinator body: wait out in-flight requests (bounded by
/// the drain deadline), ask the engine for its final checkpoint, set the
/// process-wide shutdown flag.
fn run_drain(shared: &Shared, shutdown: &AtomicBool, tx: &SyncSender<EngineMsg>) {
    let deadline = Duration::from_millis(shared.current_config().drain_deadline_ms());
    let start = Instant::now();
    while shared.requests_in_flight.load(Ordering::SeqCst) > 0 && start.elapsed() < deadline {
        std::thread::sleep(DRAIN_POLL);
    }
    let (reply, done) = sync_channel(1);
    if tx.send(EngineMsg::Drain { reply }).is_ok() {
        let _ = done.recv_timeout(RELOAD_TIMEOUT);
    }
    shutdown.store(true, Ordering::SeqCst);
}

/// The watchdog: stale-feed detection and degraded-mode recovery.
fn run_watchdog(shared: &Arc<Shared>, shutdown: &AtomicBool, tx: &SyncSender<EngineMsg>) {
    while !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(WATCHDOG_TICK);
        let config = shared.current_config();
        let stale_after = config.stale_after_ms();
        let now = shared.uptime_ms();
        let last_feed = shared.last_feed_ms.load(Ordering::SeqCst);
        let feed_fresh = now.saturating_sub(last_feed) <= stale_after;
        match shared.mode() {
            Mode::Draining => {}
            Mode::Serving => {
                if !feed_fresh {
                    shared.stale_feed.store(true, Ordering::SeqCst);
                    shared.set_mode(Mode::Degraded);
                }
            }
            Mode::Degraded => {
                // Recovery needs both a fresh feed and a live engine:
                // probe with a Ping under the decision deadline.
                if feed_fresh && engine_alive(tx, config.deadline_ms()) {
                    shared.stale_feed.store(false, Ordering::SeqCst);
                    shared.engine_overrun.store(false, Ordering::SeqCst);
                    shared.set_mode(Mode::Serving);
                }
            }
        }
    }
}

/// Probes the engine with a Ping bounded by `deadline_ms`.
fn engine_alive(tx: &SyncSender<EngineMsg>, deadline_ms: u64) -> bool {
    let (reply, pong) = sync_channel(1);
    match tx.try_send(EngineMsg::Ping { reply }) {
        Ok(()) => pong
            .recv_timeout(Duration::from_millis(deadline_ms))
            .is_ok(),
        Err(_) => false,
    }
}

/// Accept loop: accepted sockets go to the worker pool; at capacity (or
/// while draining) the peer gets an immediate typed `503` and a close —
/// never a silent drop.
fn run_acceptor(listener: &TcpListener, conn_pool: ConnPool, ctx: &Arc<ConnContext>) {
    while !ctx.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if ctx.shared.mode() == Mode::Draining {
                    ctx.shared
                        .counters
                        .connections_rejected
                        .fetch_add(1, Ordering::SeqCst);
                    pool::reject(stream, 503, "draining", "service is draining");
                    continue;
                }
                match conn_pool.try_dispatch(stream) {
                    Ok(()) => {
                        ctx.shared
                            .counters
                            .connections_accepted
                            .fetch_add(1, Ordering::SeqCst);
                    }
                    Err(stream) => {
                        ctx.shared
                            .counters
                            .connections_rejected
                            .fetch_add(1, Ordering::SeqCst);
                        pool::reject(stream, 503, "overloaded", "connection limit reached");
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    conn_pool.join();
}

/// Flushes the batched-response buffer. Returns `false` when the peer
/// is gone (or stopped reading past the write deadline).
fn flush(writer: &mut TcpStream, out: &mut Vec<u8>) -> bool {
    if out.is_empty() {
        return true;
    }
    let ok = writer.write_all(out).is_ok() && writer.flush().is_ok();
    out.clear();
    ok
}

/// Serves one keep-alive connection until the peer leaves, a request is
/// rejected, idle patience runs out, or the service shuts down.
///
/// Responses are rendered into an output buffer and written when the
/// reader has no buffered bytes — pipelined requests get batched writes
/// — and the parser's `stop` hook (which runs exactly when the read is
/// about to block) flushes anything still pending, so a response is
/// never withheld from a peer that is waiting for it.
pub(crate) fn serve_connection(stream: TcpStream, ctx: &ConnContext) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut out: Vec<u8> = Vec::with_capacity(1024);
    let mut idle_since = Instant::now();
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            let _ = flush(&mut writer, &mut out);
            return;
        }
        let budget = Duration::from_millis(ctx.shared.current_config().read_budget_ms());
        let outcome = {
            let mut stop = || {
                if !flush(&mut writer, &mut out) {
                    return true;
                }
                ctx.shutdown.load(Ordering::SeqCst)
            };
            read_request(&mut reader, budget, &mut stop)
        };
        let request = match outcome {
            ReadOutcome::Ok(request) => request,
            // A read tick fired before the next request's first byte:
            // keep-alive patience, bounded by IDLE_TIMEOUT.
            ReadOutcome::Idle => {
                if idle_since.elapsed() > IDLE_TIMEOUT {
                    let _ = flush(&mut writer, &mut out);
                    return;
                }
                continue;
            }
            ReadOutcome::Closed => {
                let _ = flush(&mut writer, &mut out);
                return;
            }
            ReadOutcome::Reject {
                status,
                kind,
                message,
            } => {
                ctx.shared
                    .counters
                    .parse_rejects
                    .fetch_add(1, Ordering::SeqCst);
                let _ = flush(&mut writer, &mut out);
                let body = ErrorBody::new(kind, message).to_json();
                let _ = write_json(&mut writer, status, &body, true);
                return;
            }
        };
        ctx.shared.requests_in_flight.fetch_add(1, Ordering::SeqCst);
        let (status, body) = route(&request, ctx);
        ctx.shared.requests_in_flight.fetch_sub(1, Ordering::SeqCst);
        // Force a close while draining so kept-alive connections wind
        // down inside the drain deadline.
        let close = request.close || ctx.shared.mode() == Mode::Draining;
        render_json(&mut out, status, &body, close);
        idle_since = Instant::now();
        if close {
            let _ = flush(&mut writer, &mut out);
            return;
        }
        if reader.buffer().is_empty() && !flush(&mut writer, &mut out) {
            return;
        }
    }
}

/// Dispatches one request.
fn route(request: &Request, ctx: &ConnContext) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(&ctx.shared),
        ("GET", "/status") => handle_status(&ctx.shared),
        ("POST", "/step") => handle_step(&request.body, &ctx.shared, &ctx.tx),
        ("POST", "/reload") => handle_reload(&request.body, &ctx.shared, &ctx.tx),
        ("POST", "/shutdown") => handle_shutdown(ctx),
        ("GET" | "POST", _) => (
            404,
            ErrorBody::new("not_found", format!("no route {}", request.path)).to_json(),
        ),
        _ => (
            405,
            ErrorBody::new(
                "method_not_allowed",
                format!("method {} not supported", request.method),
            )
            .to_json(),
        ),
    }
}

fn json_or_500<T: serde::Serialize>(status: u16, value: &T) -> (u16, String) {
    match serde_json::to_string(value) {
        Ok(body) => (status, body),
        Err(e) => (
            503,
            ErrorBody::new("decision_failed", format!("encode response: {e}")).to_json(),
        ),
    }
}

fn handle_healthz(shared: &Arc<Shared>) -> (u16, String) {
    let mode = shared.mode();
    // Degraded is still "alive" for liveness probes: 200 serving/degraded,
    // 503 only while draining (take the instance out of rotation).
    let status = if mode == Mode::Draining { 503 } else { 200 };
    json_or_500(
        status,
        &HealthBody {
            status: mode.name().to_string(),
        },
    )
}

fn handle_status(shared: &Arc<Shared>) -> (u16, String) {
    let engine = shared.status.lock().expect("status lock").clone();
    let config = shared.current_config();
    let counters = &shared.counters;
    let drain_since = shared.drain_started_ms.load(Ordering::SeqCst);
    let body = StatusBody {
        schema: STATUS_SCHEMA.to_string(),
        mode: shared.mode().name().to_string(),
        uptime_ms: shared.uptime_ms(),
        decisions: engine.decisions,
        degraded: DegradedFlags {
            stale_feed: shared.stale_feed.load(Ordering::SeqCst),
            engine_overrun: shared.engine_overrun.load(Ordering::SeqCst),
        },
        counters: ServiceCounters {
            served: counters.served.load(Ordering::SeqCst),
            timeouts: counters.timeouts.load(Ordering::SeqCst),
            backpressure: counters.backpressure.load(Ordering::SeqCst),
            degraded_served: counters.degraded_served.load(Ordering::SeqCst),
            reloads: counters.reloads.load(Ordering::SeqCst),
            reloads_rejected: counters.reloads_rejected.load(Ordering::SeqCst),
            connections_accepted: counters.connections_accepted.load(Ordering::SeqCst),
            connections_rejected: counters.connections_rejected.load(Ordering::SeqCst),
            parse_rejects: counters.parse_rejects.load(Ordering::SeqCst),
            replays_served: counters.replays_served.load(Ordering::SeqCst),
        },
        drain: DrainStatus {
            draining: shared.mode() == Mode::Draining,
            since_ms: (drain_since != u64::MAX).then_some(drain_since),
            deadline_ms: config.drain_deadline_ms(),
            connections_active: shared.connections_active.load(Ordering::SeqCst),
            requests_in_flight: shared.requests_in_flight.load(Ordering::SeqCst),
        },
        config_generation: shared.config_generation.load(Ordering::SeqCst),
        last_reload_error: shared
            .last_reload_error
            .lock()
            .expect("reload lock")
            .clone(),
        facility: engine.facility,
        sprint: engine.sprint,
        window: engine.window,
    };
    json_or_500(200, &body)
}

fn handle_step(body: &[u8], shared: &Arc<Shared>, tx: &SyncSender<EngineMsg>) -> (u16, String) {
    let step: StepBody = match std::str::from_utf8(body)
        .map_err(|e| e.to_string())
        .and_then(|text| serde_json::from_str(text).map_err(|e| e.to_string()))
    {
        Ok(step) => step,
        Err(e) => {
            return (
                400,
                ErrorBody::new("bad_request", format!("bad step body: {e}")).to_json(),
            )
        }
    };
    if !step.demand.is_finite() || step.demand < 0.0 {
        return (
            400,
            ErrorBody::new("bad_request", "demand must be finite and non-negative").to_json(),
        );
    }
    if let Some(dt) = step.dt_secs {
        if !dt.is_finite() || dt <= 0.0 {
            return (
                400,
                ErrorBody::new("bad_request", "dt_secs must be finite and positive").to_json(),
            );
        }
    }
    // Any well-formed step request freshens the feed, whatever mode we
    // answer it in — recovery is driven by traffic resuming.
    shared
        .last_feed_ms
        .store(shared.uptime_ms(), Ordering::SeqCst);

    let config = shared.current_config();
    match shared.mode() {
        Mode::Draining => (
            503,
            ErrorBody::new("draining", "service is draining").to_json(),
        ),
        Mode::Degraded => {
            shared
                .counters
                .degraded_served
                .fetch_add(1, Ordering::SeqCst);
            let reason = if shared.stale_feed.load(Ordering::SeqCst) {
                "stale_feed"
            } else {
                "engine_overrun"
            };
            json_or_500(
                200,
                &StepResponse {
                    degraded: true,
                    degraded_reason: Some(reason.to_string()),
                    record: None,
                    failsafe_cores: Some(shared.failsafe_cores.load(Ordering::SeqCst)),
                    decision_index: None,
                    replayed: false,
                },
            )
        }
        Mode::Serving => {
            let (reply, outcome) = sync_channel(1);
            match tx.try_send(EngineMsg::Step {
                demand: step.demand,
                dt_secs: step.dt_secs,
                expect_index: step.expect_index,
                reply,
            }) {
                Err(TrySendError::Full(_)) => {
                    shared.counters.backpressure.fetch_add(1, Ordering::SeqCst);
                    let mut error = ErrorBody::new(
                        "backpressure",
                        format!("decision queue full ({} deep)", config.queue_depth()),
                    );
                    error.error.queue_depth = Some(config.queue_depth() as u64);
                    (429, error.to_json())
                }
                Err(TrySendError::Disconnected(_)) => (
                    503,
                    ErrorBody::new("decision_failed", "engine is gone").to_json(),
                ),
                Ok(()) => match outcome.recv_timeout(Duration::from_millis(config.deadline_ms())) {
                    Ok(Ok(step)) => {
                        shared.counters.served.fetch_add(1, Ordering::SeqCst);
                        json_or_500(
                            200,
                            &StepResponse {
                                degraded: false,
                                degraded_reason: None,
                                record: Some(step.record),
                                failsafe_cores: None,
                                decision_index: Some(step.decision_index),
                                replayed: step.replayed,
                            },
                        )
                    }
                    Ok(Err(StepFailure::Failed(message))) => {
                        (503, ErrorBody::new("decision_failed", message).to_json())
                    }
                    Ok(Err(StepFailure::ReplayGap { expect, floor })) => (
                        409,
                        ErrorBody::new(
                            "replay_gap",
                            format!(
                                "decision {expect} is older than the replay-cache floor {floor}; \
                                 its outcome is no longer knowable"
                            ),
                        )
                        .to_json(),
                    ),
                    Ok(Err(StepFailure::IndexConflict { expect, decisions })) => (
                        409,
                        ErrorBody::new(
                            "index_conflict",
                            format!(
                                "expected decision {expect} but the plant is at {decisions} \
                                 (a different request may already hold that index)"
                            ),
                        )
                        .to_json(),
                    ),
                    Err(RecvTimeoutError::Timeout) => {
                        shared.counters.timeouts.fetch_add(1, Ordering::SeqCst);
                        shared.engine_overrun.store(true, Ordering::SeqCst);
                        shared.set_mode(Mode::Degraded);
                        let mut error = ErrorBody::new(
                            "deadline_exceeded",
                            format!("decision overran {} ms", config.deadline_ms()),
                        );
                        error.error.deadline_ms = Some(config.deadline_ms());
                        (503, error.to_json())
                    }
                    Err(RecvTimeoutError::Disconnected) => (
                        503,
                        ErrorBody::new("decision_failed", "engine dropped the request").to_json(),
                    ),
                },
            }
        }
    }
}

fn handle_reload(body: &[u8], shared: &Arc<Shared>, tx: &SyncSender<EngineMsg>) -> (u16, String) {
    let reject = |shared: &Arc<Shared>, status: u16, kind: &str, message: String| {
        shared
            .counters
            .reloads_rejected
            .fetch_add(1, Ordering::SeqCst);
        *shared.last_reload_error.lock().expect("reload lock") = Some(message.clone());
        (status, ErrorBody::new(kind, message).to_json())
    };
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(e) => return reject(shared, 400, "config", format!("bad reload body: {e}")),
    };
    // Validation happens before the engine ever sees the config: an
    // invalid reload is rejected here and the running config is untouched.
    let config = match ServiceConfig::from_json(text) {
        Ok(config) => config,
        Err(e) => return reject(shared, 400, "config", e.to_string()),
    };
    let (reply, done) = sync_channel(1);
    if tx
        .send(EngineMsg::Reload {
            config: Box::new(config),
            reply,
        })
        .is_err()
    {
        return reject(shared, 503, "config", "engine is gone".to_string());
    }
    match done.recv_timeout(RELOAD_TIMEOUT) {
        Ok(Ok(outcome)) => {
            shared.counters.reloads.fetch_add(1, Ordering::SeqCst);
            *shared.last_reload_error.lock().expect("reload lock") = None;
            json_or_500(
                200,
                &ReloadResponse {
                    reloaded: true,
                    config_generation: shared.config_generation.load(Ordering::SeqCst),
                    rebuilt: outcome.rebuilt,
                },
            )
        }
        Ok(Err(message)) => reject(shared, 503, "config", message),
        Err(_) => reject(shared, 503, "config", "reload timed out".to_string()),
    }
}

/// `POST /shutdown`: starts the graceful drain and answers immediately.
/// The coordinator finishes in-flight requests (this one included),
/// writes the final checkpoint, and stops the process's serving threads.
fn handle_shutdown(ctx: &ConnContext) -> (u16, String) {
    begin_drain(ctx.shared.clone(), ctx.shutdown.clone(), ctx.tx.clone());
    json_or_500(200, &ShutdownResponse { draining: true })
}
