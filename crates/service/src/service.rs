//! The service front end: listener, connection threads, watchdog, and
//! the [`SprintService`] handle that owns them all.
//!
//! Request flow for `POST /step`:
//!
//! 1. **Draining** → `503 draining`: the service refuses new decisions
//!    while its final checkpoint lands.
//! 2. **Degraded** → `200` with the fail-safe actuation (normal core
//!    count, no sprint) and `degraded: true`. Degraded serving *answers*,
//!    it never errors — a control plane that stops responding is worse
//!    than one that stops sprinting.
//! 3. **Serving** → the request is offered to the engine's bounded queue
//!    (`try_send`; a full queue is `429 backpressure`, never an unbounded
//!    pile-up), then awaited with the per-request deadline
//!    (`recv_timeout`; an overrun is a typed `503 deadline_exceeded` *and*
//!    flips the service to Degraded until the watchdog's liveness probe
//!    proves the engine healthy again).
//!
//! The watchdog also tracks feed freshness: if no `/step` has arrived
//! within `stale_after_ms`, the service degrades (`stale_feed`) on the
//! grounds that a sprint decision computed against a silent feed is
//! stale physics; it recovers as soon as traffic resumes and the engine
//! answers a probe.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dcs_faults::ChaosSchedule;
use dcs_sim::SimError;

use crate::config::ServiceConfig;
use crate::engine::{open_store, run_engine, EngineMsg, Mode, Shared};
use crate::http::{read_request, write_json, ReadOutcome, Request};
use crate::protocol::{
    DegradedFlags, ErrorBody, HealthBody, ReloadResponse, ServiceCounters, ShutdownResponse,
    StatusBody, StepBody, StepResponse, STATUS_SCHEMA,
};

/// How often the watchdog re-evaluates staleness and probes the engine.
const WATCHDOG_TICK: Duration = Duration::from_millis(15);
/// Idle keep-alive timeout per connection read.
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);
/// How long a reload waits for the engine to acknowledge.
const RELOAD_TIMEOUT: Duration = Duration::from_secs(10);

/// Boot options for [`SprintService::spawn`].
#[derive(Debug, Default)]
pub struct ServiceOptions {
    /// Checkpoint directory; `None` serves without persistence.
    pub state_dir: Option<PathBuf>,
    /// Injected decision faults (tests/ci); [`ChaosSchedule::none`] in
    /// production.
    pub chaos: ChaosSchedule,
}

/// A running sprint-control service.
pub struct SprintService {
    addr: SocketAddr,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    tx: SyncSender<EngineMsg>,
    engine: Option<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl SprintService {
    /// Validates `config`, restores any checkpointed hot state, binds
    /// `127.0.0.1:port` (0 picks a free port), and starts serving.
    pub fn spawn(
        config: ServiceConfig,
        options: ServiceOptions,
        port: u16,
    ) -> Result<SprintService, SimError> {
        config.validate()?;
        let (store, restored) = match options.state_dir.as_deref() {
            Some(dir) => {
                let (store, restored) = open_store(dir, &config)?;
                (Some(store), restored)
            }
            None => (None, None),
        };
        let listener = TcpListener::bind(("127.0.0.1", port))
            .map_err(|e| SimError::service(format!("bind 127.0.0.1:{port}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| SimError::service(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| SimError::service(format!("set_nonblocking: {e}")))?;

        let config = Arc::new(config);
        let shared = Arc::new(Shared::new(config.clone()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = sync_channel::<EngineMsg>(config.queue_depth());

        let engine = {
            let shared = shared.clone();
            let state_dir = options.state_dir.clone();
            let chaos = options.chaos.clone();
            std::thread::Builder::new()
                .name("sprintd-engine".to_string())
                .spawn(move || {
                    run_engine(&rx, &shared, state_dir.as_deref(), &chaos, store, restored);
                })
                .map_err(|e| SimError::service(format!("spawn engine: {e}")))?
        };
        let watchdog = {
            let shared = shared.clone();
            let shutdown = shutdown.clone();
            let tx = tx.clone();
            std::thread::Builder::new()
                .name("sprintd-watchdog".to_string())
                .spawn(move || run_watchdog(&shared, &shutdown, &tx))
                .map_err(|e| SimError::service(format!("spawn watchdog: {e}")))?
        };
        let acceptor = {
            let shared = shared.clone();
            let shutdown = shutdown.clone();
            let tx = tx.clone();
            std::thread::Builder::new()
                .name("sprintd-accept".to_string())
                .spawn(move || run_acceptor(&listener, &shared, &shutdown, &tx))
                .map_err(|e| SimError::service(format!("spawn acceptor: {e}")))?
        };

        Ok(SprintService {
            addr,
            shared,
            shutdown,
            tx,
            engine: Some(engine),
            acceptor: Some(acceptor),
            watchdog: Some(watchdog),
        })
    }

    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state block (tests poke at mode/counters through this).
    #[must_use]
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Drains and stops the service: final checkpoint, threads joined.
    pub fn shutdown(mut self) {
        self.begin_drain();
        self.join_threads();
    }

    /// Blocks until the service drains (a `POST /shutdown` or a dropped
    /// engine). Used by `sprintd`'s main thread.
    pub fn join(mut self) {
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
        self.shutdown.store(true, Ordering::SeqCst);
        self.join_threads();
    }

    fn begin_drain(&self) {
        self.shared.set_mode(Mode::Draining);
        self.shared
            .mode
            .store(Mode::Draining.as_u8(), Ordering::SeqCst);
        let (reply, done) = sync_channel(1);
        if self.tx.send(EngineMsg::Drain { reply }).is_ok() {
            let _ = done.recv_timeout(RELOAD_TIMEOUT);
        }
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn join_threads(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for SprintService {
    fn drop(&mut self) {
        if self.engine.is_some() {
            self.shared
                .mode
                .store(Mode::Draining.as_u8(), Ordering::SeqCst);
            let (reply, done) = sync_channel(1);
            if self.tx.send(EngineMsg::Drain { reply }).is_ok() {
                let _ = done.recv_timeout(Duration::from_secs(2));
            }
            self.join_threads();
        }
    }
}

/// The watchdog: stale-feed detection and degraded-mode recovery.
fn run_watchdog(shared: &Arc<Shared>, shutdown: &AtomicBool, tx: &SyncSender<EngineMsg>) {
    while !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(WATCHDOG_TICK);
        let config = shared.current_config();
        let stale_after = config.stale_after_ms();
        let now = shared.uptime_ms();
        let last_feed = shared.last_feed_ms.load(Ordering::SeqCst);
        let feed_fresh = now.saturating_sub(last_feed) <= stale_after;
        match shared.mode() {
            Mode::Draining => {}
            Mode::Serving => {
                if !feed_fresh {
                    shared.stale_feed.store(true, Ordering::SeqCst);
                    shared.set_mode(Mode::Degraded);
                }
            }
            Mode::Degraded => {
                // Recovery needs both a fresh feed and a live engine:
                // probe with a Ping under the decision deadline.
                if feed_fresh && engine_alive(tx, config.deadline_ms()) {
                    shared.stale_feed.store(false, Ordering::SeqCst);
                    shared.engine_overrun.store(false, Ordering::SeqCst);
                    shared.set_mode(Mode::Serving);
                }
            }
        }
    }
}

/// Probes the engine with a Ping bounded by `deadline_ms`.
fn engine_alive(tx: &SyncSender<EngineMsg>, deadline_ms: u64) -> bool {
    let (reply, pong) = sync_channel(1);
    match tx.try_send(EngineMsg::Ping { reply }) {
        Ok(()) => pong
            .recv_timeout(Duration::from_millis(deadline_ms))
            .is_ok(),
        Err(_) => false,
    }
}

/// Accept loop: non-blocking accept, one thread per connection.
fn run_acceptor(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    shutdown: &Arc<AtomicBool>,
    tx: &SyncSender<EngineMsg>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let shared = shared.clone();
                let shutdown = shutdown.clone();
                let tx = tx.clone();
                let _ = std::thread::Builder::new()
                    .name("sprintd-conn".to_string())
                    .spawn(move || serve_connection(stream, &shared, &shutdown, &tx));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Serves one keep-alive connection until the peer leaves, a request is
/// malformed, or the service shuts down.
fn serve_connection(
    stream: TcpStream,
    shared: &Arc<Shared>,
    shutdown: &Arc<AtomicBool>,
    tx: &SyncSender<EngineMsg>,
) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    while !shutdown.load(Ordering::SeqCst) {
        let request = match read_request(&mut reader, IDLE_TIMEOUT) {
            ReadOutcome::Ok(request) => request,
            ReadOutcome::Closed => return,
            ReadOutcome::Malformed(why) => {
                let body = ErrorBody::new("bad_request", why).to_json();
                let _ = write_json(&mut writer, 400, &body, true);
                return;
            }
        };
        let close = request.close;
        let (status, body) = route(&request, shared, tx);
        if !write_json(&mut writer, status, &body, close) || close {
            return;
        }
    }
}

/// Dispatches one request.
fn route(request: &Request, shared: &Arc<Shared>, tx: &SyncSender<EngineMsg>) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(shared),
        ("GET", "/status") => handle_status(shared),
        ("POST", "/step") => handle_step(&request.body, shared, tx),
        ("POST", "/reload") => handle_reload(&request.body, shared, tx),
        ("POST", "/shutdown") => handle_shutdown(shared, tx),
        ("GET" | "POST", _) => (
            404,
            ErrorBody::new("not_found", format!("no route {}", request.path)).to_json(),
        ),
        _ => (
            405,
            ErrorBody::new(
                "method_not_allowed",
                format!("method {} not supported", request.method),
            )
            .to_json(),
        ),
    }
}

fn json_or_500<T: serde::Serialize>(status: u16, value: &T) -> (u16, String) {
    match serde_json::to_string(value) {
        Ok(body) => (status, body),
        Err(e) => (
            503,
            ErrorBody::new("decision_failed", format!("encode response: {e}")).to_json(),
        ),
    }
}

fn handle_healthz(shared: &Arc<Shared>) -> (u16, String) {
    let mode = shared.mode();
    // Degraded is still "alive" for liveness probes: 200 serving/degraded,
    // 503 only while draining (take the instance out of rotation).
    let status = if mode == Mode::Draining { 503 } else { 200 };
    json_or_500(
        status,
        &HealthBody {
            status: mode.name().to_string(),
        },
    )
}

fn handle_status(shared: &Arc<Shared>) -> (u16, String) {
    let engine = shared.status.lock().expect("status lock").clone();
    let counters = &shared.counters;
    let body = StatusBody {
        schema: STATUS_SCHEMA.to_string(),
        mode: shared.mode().name().to_string(),
        uptime_ms: shared.uptime_ms(),
        decisions: engine.decisions,
        degraded: DegradedFlags {
            stale_feed: shared.stale_feed.load(Ordering::SeqCst),
            engine_overrun: shared.engine_overrun.load(Ordering::SeqCst),
        },
        counters: ServiceCounters {
            served: counters.served.load(Ordering::SeqCst),
            timeouts: counters.timeouts.load(Ordering::SeqCst),
            backpressure: counters.backpressure.load(Ordering::SeqCst),
            degraded_served: counters.degraded_served.load(Ordering::SeqCst),
            reloads: counters.reloads.load(Ordering::SeqCst),
            reloads_rejected: counters.reloads_rejected.load(Ordering::SeqCst),
        },
        config_generation: shared.config_generation.load(Ordering::SeqCst),
        last_reload_error: shared
            .last_reload_error
            .lock()
            .expect("reload lock")
            .clone(),
        facility: engine.facility,
        sprint: engine.sprint,
        window: engine.window,
    };
    json_or_500(200, &body)
}

fn handle_step(body: &[u8], shared: &Arc<Shared>, tx: &SyncSender<EngineMsg>) -> (u16, String) {
    let step: StepBody = match std::str::from_utf8(body)
        .map_err(|e| e.to_string())
        .and_then(|text| serde_json::from_str(text).map_err(|e| e.to_string()))
    {
        Ok(step) => step,
        Err(e) => {
            return (
                400,
                ErrorBody::new("bad_request", format!("bad step body: {e}")).to_json(),
            )
        }
    };
    if !step.demand.is_finite() || step.demand < 0.0 {
        return (
            400,
            ErrorBody::new("bad_request", "demand must be finite and non-negative").to_json(),
        );
    }
    if let Some(dt) = step.dt_secs {
        if !dt.is_finite() || dt <= 0.0 {
            return (
                400,
                ErrorBody::new("bad_request", "dt_secs must be finite and positive").to_json(),
            );
        }
    }
    // Any well-formed step request freshens the feed, whatever mode we
    // answer it in — recovery is driven by traffic resuming.
    shared
        .last_feed_ms
        .store(shared.uptime_ms(), Ordering::SeqCst);

    let config = shared.current_config();
    match shared.mode() {
        Mode::Draining => (
            503,
            ErrorBody::new("draining", "service is draining").to_json(),
        ),
        Mode::Degraded => {
            shared
                .counters
                .degraded_served
                .fetch_add(1, Ordering::SeqCst);
            let reason = if shared.stale_feed.load(Ordering::SeqCst) {
                "stale_feed"
            } else {
                "engine_overrun"
            };
            json_or_500(
                200,
                &StepResponse {
                    degraded: true,
                    degraded_reason: Some(reason.to_string()),
                    record: None,
                    failsafe_cores: Some(shared.failsafe_cores.load(Ordering::SeqCst)),
                    decision_index: None,
                },
            )
        }
        Mode::Serving => {
            let (reply, outcome) = sync_channel(1);
            match tx.try_send(EngineMsg::Step {
                demand: step.demand,
                dt_secs: step.dt_secs,
                reply,
            }) {
                Err(TrySendError::Full(_)) => {
                    shared.counters.backpressure.fetch_add(1, Ordering::SeqCst);
                    let mut error = ErrorBody::new(
                        "backpressure",
                        format!("decision queue full ({} deep)", config.queue_depth()),
                    );
                    error.error.queue_depth = Some(config.queue_depth() as u64);
                    (429, error.to_json())
                }
                Err(TrySendError::Disconnected(_)) => (
                    503,
                    ErrorBody::new("decision_failed", "engine is gone").to_json(),
                ),
                Ok(()) => match outcome.recv_timeout(Duration::from_millis(config.deadline_ms())) {
                    Ok(Ok(step)) => {
                        shared.counters.served.fetch_add(1, Ordering::SeqCst);
                        json_or_500(
                            200,
                            &StepResponse {
                                degraded: false,
                                degraded_reason: None,
                                record: Some(step.record),
                                failsafe_cores: None,
                                decision_index: Some(step.decision_index),
                            },
                        )
                    }
                    Ok(Err(message)) => (503, ErrorBody::new("decision_failed", message).to_json()),
                    Err(RecvTimeoutError::Timeout) => {
                        shared.counters.timeouts.fetch_add(1, Ordering::SeqCst);
                        shared.engine_overrun.store(true, Ordering::SeqCst);
                        shared.set_mode(Mode::Degraded);
                        let mut error = ErrorBody::new(
                            "deadline_exceeded",
                            format!("decision overran {} ms", config.deadline_ms()),
                        );
                        error.error.deadline_ms = Some(config.deadline_ms());
                        (503, error.to_json())
                    }
                    Err(RecvTimeoutError::Disconnected) => (
                        503,
                        ErrorBody::new("decision_failed", "engine dropped the request").to_json(),
                    ),
                },
            }
        }
    }
}

fn handle_reload(body: &[u8], shared: &Arc<Shared>, tx: &SyncSender<EngineMsg>) -> (u16, String) {
    let reject = |shared: &Arc<Shared>, status: u16, kind: &str, message: String| {
        shared
            .counters
            .reloads_rejected
            .fetch_add(1, Ordering::SeqCst);
        *shared.last_reload_error.lock().expect("reload lock") = Some(message.clone());
        (status, ErrorBody::new(kind, message).to_json())
    };
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(e) => return reject(shared, 400, "config", format!("bad reload body: {e}")),
    };
    // Validation happens before the engine ever sees the config: an
    // invalid reload is rejected here and the running config is untouched.
    let config = match ServiceConfig::from_json(text) {
        Ok(config) => config,
        Err(e) => return reject(shared, 400, "config", e.to_string()),
    };
    let (reply, done) = sync_channel(1);
    if tx.send(EngineMsg::Reload { config, reply }).is_err() {
        return reject(shared, 503, "config", "engine is gone".to_string());
    }
    match done.recv_timeout(RELOAD_TIMEOUT) {
        Ok(Ok(outcome)) => {
            shared.counters.reloads.fetch_add(1, Ordering::SeqCst);
            *shared.last_reload_error.lock().expect("reload lock") = None;
            json_or_500(
                200,
                &ReloadResponse {
                    reloaded: true,
                    config_generation: shared.config_generation.load(Ordering::SeqCst),
                    rebuilt: outcome.rebuilt,
                },
            )
        }
        Ok(Err(message)) => reject(shared, 503, "config", message),
        Err(_) => reject(shared, 503, "config", "reload timed out".to_string()),
    }
}

fn handle_shutdown(shared: &Arc<Shared>, tx: &SyncSender<EngineMsg>) -> (u16, String) {
    shared.mode.store(Mode::Draining.as_u8(), Ordering::SeqCst);
    let (reply, done) = sync_channel(1);
    if tx.send(EngineMsg::Drain { reply }).is_ok() {
        let _ = done.recv_timeout(RELOAD_TIMEOUT);
    }
    json_or_500(200, &ShutdownResponse { draining: true })
}
