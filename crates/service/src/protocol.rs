//! Wire types for the service's JSON protocol.
//!
//! Every response body is one of these shapes; every error is typed by a
//! stable `kind` so clients branch on structure, never on message
//! strings. `/status` is also the crash-safety observability surface: its
//! `facility` section serializes the plant's hot state with exact
//! (shortest-roundtrip) float literals, so two statuses comparing equal
//! as JSON means the underlying `f64`s are bit-identical.

use dcs_core::{StepRecord, WindowStats};
use serde::{Deserialize, Serialize};

/// Status schema tag.
pub const STATUS_SCHEMA: &str = "dcs-service/status-v2";

/// `POST /step` request body.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepBody {
    /// Offered normalized demand for this control period.
    pub demand: f64,
    /// Optional step length override in seconds.
    pub dt_secs: Option<f64>,
    /// Idempotency key: the decision index the sender expects this step
    /// to be applied at. When set, a retry of a request the engine
    /// already applied is answered from the bounded replay cache
    /// (`replayed: true`) instead of advancing the plant again; a
    /// *different* request aimed at an already-taken index is a typed
    /// `409 index_conflict`.
    #[serde(default)]
    pub expect_index: Option<u64>,
}

/// `POST /step` success response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepResponse {
    /// `true` when this decision came from the fail-safe path instead of
    /// the physics-backed engine.
    pub degraded: bool,
    /// Why the fail-safe path answered (`"stale_feed"` or
    /// `"engine_overrun"`), when `degraded`.
    pub degraded_reason: Option<String>,
    /// The engine's step telemetry (absent on degraded responses).
    pub record: Option<StepRecord>,
    /// The fail-safe actuation (present on degraded responses): run the
    /// normal core count, no sprint.
    pub failsafe_cores: Option<u32>,
    /// Decision sequence number (lifetime, survives restarts).
    pub decision_index: Option<u64>,
    /// `true` when this response was served from the replay cache (an
    /// idempotent retry of an already-applied decision); the plant did
    /// not advance.
    #[serde(default)]
    pub replayed: bool,
}

/// A typed error body: `{"error": {...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// The error.
    pub error: ErrorDetail,
}

/// The typed error payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorDetail {
    /// Stable machine-readable kind: `bad_request`, `backpressure`,
    /// `deadline_exceeded`, `decision_failed`, `draining`, `config`,
    /// `not_found`, `method_not_allowed`, `overloaded`,
    /// `request_timeout`, `payload_too_large`, `headers_too_large`,
    /// `replay_gap`, `index_conflict`.
    pub kind: String,
    /// Human-readable context.
    pub message: String,
    /// The deadline that was exceeded, for `deadline_exceeded`.
    pub deadline_ms: Option<u64>,
    /// The queue depth that was full, for `backpressure`.
    pub queue_depth: Option<u64>,
}

impl ErrorBody {
    /// Builds a typed error body.
    #[must_use]
    pub fn new(kind: &str, message: impl Into<String>) -> ErrorBody {
        ErrorBody {
            error: ErrorDetail {
                kind: kind.to_string(),
                message: message.into(),
                deadline_ms: None,
                queue_depth: None,
            },
        }
    }

    /// Serializes to JSON (infallible shapes only).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| r#"{"error":{"kind":"internal"}}"#.into())
    }
}

/// One breaker's thermal standing in `/status`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakerStatus {
    /// Breaker name (`dc`, `pdu-0`, …).
    pub name: String,
    /// Trip progress in `[0, 1]`.
    pub trip_progress: f64,
    /// Whether the breaker is open.
    pub tripped: bool,
    /// Nameplate rating in watts.
    pub rated_w: f64,
    /// Largest indefinitely sustainable load in watts (thermal headroom).
    pub no_trip_limit_w: f64,
}

/// The UPS fleet's standing in `/status`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpsStatus {
    /// Aggregate state of charge in `[0, 1]`.
    pub state_of_charge: f64,
    /// Deliverable energy in watt-hours.
    pub deliverable_wh: f64,
    /// Servers currently on battery.
    pub on_battery: u64,
}

/// The TES tank's standing in `/status`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TesStatus {
    /// State of charge in `[0, 1]`.
    pub state_of_charge: f64,
    /// Stored heat capacity in watt-hours.
    pub stored_wh: f64,
}

/// The engine-owned part of `/status`: the plant's hot state rendered
/// for observability. Updated after every decision and immediately after
/// a checkpoint restore, so comparing `facility` across a crash verifies
/// bit-identical resumption.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FacilityStatus {
    /// Facility clock in seconds.
    pub time_secs: f64,
    /// Room air temperature in °C.
    pub room_temperature_c: f64,
    /// Temperature headroom to the overheat threshold in °C.
    pub room_headroom_c: f64,
    /// UPS fleet standing.
    pub ups: UpsStatus,
    /// TES tank standing.
    pub tes: TesStatus,
    /// Per-breaker thermal standing: the DC breaker first, then every
    /// PDU breaker.
    pub breakers: Vec<BreakerStatus>,
}

/// Sprint-lifecycle summary in `/status`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SprintStatus {
    /// Strategy name.
    pub strategy: String,
    /// Whether a sprint is active.
    pub active: bool,
    /// Whether the safety latch has permanently terminated sprinting.
    pub terminated: bool,
}

/// Degraded-mode flags in `/status`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradedFlags {
    /// The demand feed has been silent past the configured window.
    pub stale_feed: bool,
    /// A decision overran its deadline and the engine has not yet proven
    /// healthy again.
    pub engine_overrun: bool,
}

/// Service counters in `/status` (since this process started).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceCounters {
    /// Physics-backed decisions served.
    pub served: u64,
    /// Requests that hit the decision deadline.
    pub timeouts: u64,
    /// Requests rejected by the bounded queue.
    pub backpressure: u64,
    /// Fail-safe decisions served while degraded.
    pub degraded_served: u64,
    /// Successful config reloads.
    pub reloads: u64,
    /// Rejected (rolled-back) config reloads.
    pub reloads_rejected: u64,
    /// Connections handed to the worker pool.
    #[serde(default)]
    pub connections_accepted: u64,
    /// Connections refused with a typed `503` — the pool was at capacity
    /// (`overloaded`) or the service was draining (`draining`).
    #[serde(default)]
    pub connections_rejected: u64,
    /// Requests rejected by the HTTP parser with a typed `4xx`
    /// (malformed, oversized, or slowloris-slow).
    #[serde(default)]
    pub parse_rejects: u64,
    /// Idempotent retries answered from the replay cache.
    #[serde(default)]
    pub replays_served: u64,
}

/// Drain standing in `/status`: what a graceful shutdown is waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DrainStatus {
    /// `true` once a drain has begun (the mode is also `draining`).
    pub draining: bool,
    /// Uptime milliseconds at which the drain began (absent before).
    pub since_ms: Option<u64>,
    /// The configured drain deadline.
    pub deadline_ms: u64,
    /// Connections currently being served by pool workers.
    pub connections_active: u64,
    /// Requests currently being routed (the drain waits for these).
    pub requests_in_flight: u64,
}

/// `GET /status` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusBody {
    /// Schema tag ([`STATUS_SCHEMA`]).
    pub schema: String,
    /// Serving state machine position: `serving`, `degraded`, `draining`.
    pub mode: String,
    /// Milliseconds since this process started.
    pub uptime_ms: u64,
    /// Lifetime decision count (persisted across restarts).
    pub decisions: u64,
    /// Why the service is degraded, if it is.
    pub degraded: DegradedFlags,
    /// Since-boot counters.
    pub counters: ServiceCounters,
    /// Drain standing (what a graceful shutdown waits on).
    #[serde(default)]
    pub drain: DrainStatus,
    /// Config generation (bumped by each successful reload).
    pub config_generation: u64,
    /// The most recent rejected reload's error, if any.
    pub last_reload_error: Option<String>,
    /// The plant's hot state (the crash-safety anchor).
    pub facility: FacilityStatus,
    /// Sprint lifecycle summary.
    pub sprint: SprintStatus,
    /// Recent-step telemetry window.
    pub window: WindowStats,
}

impl Default for DrainStatus {
    /// The value `drain` deserializes to from a v1 status (no drain
    /// information recorded): not draining, nothing counted.
    fn default() -> DrainStatus {
        DrainStatus {
            draining: false,
            since_ms: None,
            deadline_ms: 0,
            connections_active: 0,
            requests_in_flight: 0,
        }
    }
}

/// `GET /healthz` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthBody {
    /// `serving`, `degraded`, or `draining`.
    pub status: String,
}

/// `POST /reload` success response.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReloadResponse {
    /// Whether the reload was applied.
    pub reloaded: bool,
    /// The new config generation.
    pub config_generation: u64,
    /// Whether the plant was rebuilt (geometry/controller change) rather
    /// than hot-swapped.
    pub rebuilt: bool,
}

/// `POST /shutdown` response.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShutdownResponse {
    /// Always `true`: the service is now draining.
    pub draining: bool,
}
