//! A deliberately tiny HTTP/1.1 layer over `std::net` — just enough for
//! the service's four endpoints, with hard limits everywhere.
//!
//! The container this repository builds in has no async runtime or HTTP
//! crates, so the daemon speaks a strict subset of HTTP/1.1 itself:
//! request line + headers (8 KiB cap), `Content-Length` bodies (64 KiB
//! cap), persistent connections by default, `Connection: close` honored.
//! Anything outside the subset gets a `400` and the connection is closed
//! — a malformed peer can never wedge a worker.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Cap on the request line plus headers.
const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Cap on a request body.
const MAX_BODY_BYTES: usize = 64 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method.
    pub method: String,
    /// Path as sent (query strings are not supported and left attached).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// `true` when the peer asked to close after this exchange.
    pub close: bool,
}

/// Why a read did not produce a request.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A well-formed request.
    Ok(Request),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The bytes were not acceptable HTTP; the caller should 400 + close.
    Malformed(&'static str),
}

/// Reads one request from the stream. `timeout` bounds the wait for the
/// *first* byte (idle keep-alive); reads within a request use the same
/// timeout per syscall, so a trickling peer cannot hold a worker forever.
pub fn read_request(reader: &mut BufReader<TcpStream>, timeout: Duration) -> ReadOutcome {
    let _ = reader.get_ref().set_read_timeout(Some(timeout));
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return ReadOutcome::Closed,
        Ok(_) => {}
        Err(_) => return ReadOutcome::Closed,
    }
    if line.len() > MAX_HEAD_BYTES {
        return ReadOutcome::Malformed("request line too long");
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ReadOutcome::Malformed("bad request line");
    };
    if !version.starts_with("HTTP/1.") {
        return ReadOutcome::Malformed("unsupported HTTP version");
    }
    let method = method.to_ascii_uppercase();
    let path = path.to_string();

    let mut content_length = 0_usize;
    let mut close = false;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(_) => {}
            Err(_) => return ReadOutcome::Closed,
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return ReadOutcome::Malformed("headers too long");
        }
        let trimmed = header.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return ReadOutcome::Malformed("bad header");
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => match value.parse::<usize>() {
                Ok(n) if n <= MAX_BODY_BYTES => content_length = n,
                Ok(_) => return ReadOutcome::Malformed("body too large"),
                Err(_) => return ReadOutcome::Malformed("bad content-length"),
            },
            "connection" if value.eq_ignore_ascii_case("close") => close = true,
            "transfer-encoding" => {
                // Chunked bodies are outside the subset.
                return ReadOutcome::Malformed("transfer-encoding not supported");
            }
            _ => {}
        }
    }
    let mut body = vec![0_u8; content_length];
    if content_length > 0 && reader.read_exact(&mut body).is_err() {
        return ReadOutcome::Closed;
    }
    ReadOutcome::Ok(Request {
        method,
        path,
        body,
        close,
    })
}

/// Writes one JSON response. Returns `false` when the peer is gone.
pub fn write_json(stream: &mut TcpStream, status: u16, body: &str, close: bool) -> bool {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let connection = if close { "close" } else { "keep-alive" };
    // One write per response: paired with TCP_NODELAY this avoids the
    // Nagle/delayed-ACK stall that two-segment responses provoke.
    let message = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(message.as_bytes()).is_ok() && stream.flush().is_ok()
}
