//! A deliberately tiny, hardened HTTP/1.1 layer over `std` I/O — just
//! enough for the service's endpoints, with hard limits everywhere.
//!
//! The container this repository builds in has no async runtime or HTTP
//! crates, so the daemon speaks a strict subset of HTTP/1.1 itself:
//! request line + headers (8 KiB cap), `Content-Length` bodies (64 KiB
//! cap), persistent connections by default, `Connection: close` honored.
//! Anything outside the subset gets a *typed* rejection — `400` for
//! malformed bytes, `413` for an oversized body, `431` for oversized
//! headers, `408` when a peer trickles a request past the read budget —
//! and the connection is closed afterwards, so a malformed or malicious
//! peer can never wedge a worker or desynchronize keep-alive framing.
//!
//! The parser is generic over [`BufRead`] and works on raw bytes (no
//! UTF-8 assumptions about the wire), which is what lets the fuzz suite
//! in `tests/http_fuzz.rs` drive it with adversarial in-memory streams:
//! torn reads at every byte boundary, random garbage, pathological
//! `Content-Length` values, pipelined requests.
//!
//! Slowloris guard: socket reads are configured with a short per-syscall
//! timeout (a "tick") by the connection worker; [`read_request`] turns a
//! tick that fires *before* any request byte into [`ReadOutcome::Idle`]
//! (keep-alive patience is the caller's policy) and a tick that fires
//! *mid-request* into a budget check — once the total time since the
//! first request byte exceeds `budget`, the read is abandoned with a
//! typed `408`.

use std::io::{BufRead, ErrorKind, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Cap on the request line plus headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Cap on a request body.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method.
    pub method: String,
    /// Path as sent (query strings are not supported and left attached).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// `true` when the peer asked to close after this exchange.
    pub close: bool,
}

/// Why a read did not produce a request.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A well-formed request.
    Ok(Request),
    /// The peer closed (or the transport failed) between requests, or the
    /// caller's `stop` fired mid-request; there is nobody to answer.
    Closed,
    /// The read timed out before the first byte of a new request arrived.
    /// Keep-alive idling is the caller's policy, not the parser's.
    Idle,
    /// The bytes were not an acceptable request; the caller should write
    /// the typed status and close the connection. The kinds mirror
    /// [`crate::ErrorBody`]: `bad_request` (400), `request_timeout`
    /// (408), `payload_too_large` (413), `headers_too_large` (431).
    Reject {
        /// HTTP status to answer with (400, 408, 413, or 431).
        status: u16,
        /// Stable machine-readable error kind.
        kind: &'static str,
        /// Human-readable context.
        message: &'static str,
    },
}

impl ReadOutcome {
    fn bad_request(message: &'static str) -> ReadOutcome {
        ReadOutcome::Reject {
            status: 400,
            kind: "bad_request",
            message,
        }
    }

    fn timeout(message: &'static str) -> ReadOutcome {
        ReadOutcome::Reject {
            status: 408,
            kind: "request_timeout",
            message,
        }
    }
}

/// How one line read ended.
enum LineEnd {
    /// A full line (terminator included) is in the buffer.
    Line,
    /// Clean EOF before a terminator.
    Eof,
    /// The line exceeded the cap; reading stopped mid-line.
    TooLong,
}

/// `true` for the error kinds a timed-out blocking-socket read produces.
fn is_wait(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Appends one `\n`-terminated line (terminator included) to `buf`,
/// never holding more than `max + 1` bytes. Bytes are consumed from the
/// reader as they are copied, so a torn read resumes exactly where it
/// left off — callers retry with the same `buf` after a wait error.
fn read_line_limited<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<LineEnd> {
    loop {
        let available = match reader.fill_buf() {
            Ok(available) => available,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(LineEnd::Eof);
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            let take = (pos + 1).min(max.saturating_sub(buf.len()) + 1);
            buf.extend_from_slice(&available[..take]);
            reader.consume(pos + 1);
            return Ok(if buf.len() > max {
                LineEnd::TooLong
            } else {
                LineEnd::Line
            });
        }
        let room = max.saturating_sub(buf.len()) + 1;
        let take = available.len().min(room);
        buf.extend_from_slice(&available[..take]);
        let consumed = available.len();
        reader.consume(consumed);
        if buf.len() > max {
            return Ok(LineEnd::TooLong);
        }
    }
}

/// Strict `Content-Length` parse: ASCII digits only (no sign, no
/// whitespace beyond the trim the caller already did), rejecting
/// overflow.
fn parse_content_length(value: &str) -> Option<usize> {
    if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    value.parse::<usize>().ok()
}

/// Reads one request from the stream.
///
/// `budget` bounds the *total* wall-clock time from the first request
/// byte to the end of the body — the slowloris guard. `stop` is polled
/// whenever a read waits (the caller's socket read timeout is the poll
/// tick); returning `true` abandons the read with [`ReadOutcome::Closed`]
/// so a shutting-down service never waits out a slow peer. Because it
/// runs exactly when the parser is about to block, `stop` doubles as the
/// connection worker's flush hook for buffered pipelined responses.
pub fn read_request<R: BufRead>(
    reader: &mut R,
    budget: Duration,
    stop: &mut dyn FnMut() -> bool,
) -> ReadOutcome {
    let mut started: Option<Instant> = None;
    let mut line: Vec<u8> = Vec::with_capacity(128);

    // Request line. A wait before the first byte is Idle; after it, the
    // budget clock is running.
    let end = loop {
        match read_line_limited(reader, &mut line, MAX_HEAD_BYTES) {
            Ok(end) => break end,
            Err(e) if is_wait(&e) => {
                if stop() {
                    return ReadOutcome::Closed;
                }
                if line.is_empty() && started.is_none() {
                    return ReadOutcome::Idle;
                }
                if started.is_some_and(|t| t.elapsed() > budget) {
                    return ReadOutcome::timeout("request line read overran the budget");
                }
                started.get_or_insert_with(Instant::now);
            }
            Err(_) => return ReadOutcome::Closed,
        }
    };
    if line.is_empty() {
        return ReadOutcome::Closed; // clean EOF between requests
    }
    let started = *started.get_or_insert_with(Instant::now);
    match end {
        LineEnd::Eof => return ReadOutcome::bad_request("truncated request line"),
        LineEnd::TooLong => {
            return ReadOutcome::Reject {
                status: 431,
                kind: "headers_too_large",
                message: "request line too long",
            }
        }
        LineEnd::Line => {}
    }
    let Ok(request_line) = std::str::from_utf8(&line) else {
        return ReadOutcome::bad_request("request line is not UTF-8");
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ReadOutcome::bad_request("bad request line");
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return ReadOutcome::bad_request("unsupported HTTP version");
    }
    let method = method.to_ascii_uppercase();
    let path = path.to_string();
    let mut head_bytes = line.len();

    // Headers.
    let mut content_length = 0_usize;
    let mut close = false;
    loop {
        let mut header: Vec<u8> = Vec::with_capacity(64);
        let end = loop {
            match read_line_limited(
                reader,
                &mut header,
                MAX_HEAD_BYTES.saturating_sub(head_bytes),
            ) {
                Ok(end) => break end,
                Err(e) if is_wait(&e) => {
                    if stop() {
                        return ReadOutcome::Closed;
                    }
                    if started.elapsed() > budget {
                        return ReadOutcome::timeout("header read overran the budget");
                    }
                }
                Err(_) => return ReadOutcome::Closed,
            }
        };
        match end {
            LineEnd::Eof => return ReadOutcome::bad_request("truncated headers"),
            LineEnd::TooLong => {
                return ReadOutcome::Reject {
                    status: 431,
                    kind: "headers_too_large",
                    message: "headers too long",
                }
            }
            LineEnd::Line => {}
        }
        head_bytes += header.len();
        let Ok(text) = std::str::from_utf8(&header) else {
            return ReadOutcome::bad_request("header is not UTF-8");
        };
        let trimmed = text.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return ReadOutcome::bad_request("bad header");
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => match parse_content_length(value) {
                Some(n) if n <= MAX_BODY_BYTES => content_length = n,
                Some(_) => {
                    return ReadOutcome::Reject {
                        status: 413,
                        kind: "payload_too_large",
                        message: "body exceeds the 64 KiB cap",
                    }
                }
                None => return ReadOutcome::bad_request("bad content-length"),
            },
            "connection" if value.eq_ignore_ascii_case("close") => close = true,
            "transfer-encoding" => {
                // Chunked bodies are outside the subset.
                return ReadOutcome::bad_request("transfer-encoding not supported");
            }
            _ => {}
        }
    }

    // Body: resumable across torn reads, same total budget.
    let mut body = vec![0_u8; content_length];
    let mut filled = 0_usize;
    while filled < content_length {
        match reader.read(&mut body[filled..]) {
            Ok(0) => return ReadOutcome::bad_request("truncated body"),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_wait(&e) => {
                if stop() {
                    return ReadOutcome::Closed;
                }
                if started.elapsed() > budget {
                    return ReadOutcome::timeout("body read overran the budget");
                }
            }
            Err(_) => return ReadOutcome::Closed,
        }
    }
    ReadOutcome::Ok(Request {
        method,
        path,
        body,
        close,
    })
}

/// The reason phrase for a status the service emits.
#[must_use]
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Renders one JSON response into `out` (single contiguous buffer: one
/// write per response avoids the Nagle/delayed-ACK stall two-segment
/// responses provoke).
pub fn render_json(out: &mut Vec<u8>, status: u16, body: &str, close: bool) {
    let connection = if close { "close" } else { "keep-alive" };
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n",
        reason_phrase(status),
        body.len()
    );
    out.reserve(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body.as_bytes());
}

/// Writes one JSON response. Returns `false` when the peer is gone.
pub fn write_json(stream: &mut TcpStream, status: u16, body: &str, close: bool) -> bool {
    let mut message = Vec::with_capacity(256 + body.len());
    render_json(&mut message, status, body, close);
    stream.write_all(&message).is_ok() && stream.flush().is_ok()
}
