//! The decision engine: one thread that owns the plant.
//!
//! `FacilityState` borrows its spec and controller config, so a
//! long-running service keeps both on the engine thread's stack: an outer
//! loop builds the plant from the current [`ServiceConfig`], an inner
//! loop serves [`EngineMsg`]s from the bounded queue. A reload that keeps
//! the same plant hot-swaps the service knobs in place; a reload that
//! changes the plant exits the inner loop so the outer loop rebuilds —
//! the only moment plant state is (deliberately) reset.
//!
//! Every decision runs inside `catch_unwind`: a panicking step (real or
//! chaos-injected) answers that one request with a typed error and the
//! engine keeps serving. Every `checkpoint_every` decisions the hot state
//! is checkpointed; on boot (and on plant rebuild) the newest intact
//! snapshot is restored, so a `kill -9` resumes bit-identically.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dcs_core::{
    step_cycle, ControllerConfig, FacilityState, Greedy, ServiceSink, SprintPolicy, StepInput,
    StepRecord, WindowStats,
};
use dcs_faults::{ChaosKind, ChaosSchedule};
use dcs_power::DataCenterSpec;
use dcs_sim::{CheckpointStore, SimError};
use dcs_units::Seconds;

use crate::config::ServiceConfig;
use crate::hot::{ServiceHotState, HOT_STATE_KIND, HOT_STATE_SCHEMA};
use crate::protocol::{BreakerStatus, FacilityStatus, SprintStatus, TesStatus, UpsStatus};

/// Serving-state machine position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Normal operation: decisions come from the physics engine.
    Serving,
    /// Fail-safe operation: decisions are the non-sprint default.
    Degraded,
    /// Shutting down: `/step` refuses, state is being checkpointed.
    Draining,
}

impl Mode {
    /// Decodes the atomic representation.
    #[must_use]
    pub fn from_u8(raw: u8) -> Mode {
        match raw {
            1 => Mode::Degraded,
            2 => Mode::Draining,
            _ => Mode::Serving,
        }
    }

    /// Encodes for the atomic.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            Mode::Serving => 0,
            Mode::Degraded => 1,
            Mode::Draining => 2,
        }
    }

    /// Wire name (`serving`, `degraded`, `draining`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mode::Serving => "serving",
            Mode::Degraded => "degraded",
            Mode::Draining => "draining",
        }
    }
}

/// One successful decision, as the engine reports it.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// The step's telemetry record.
    pub record: StepRecord,
    /// Lifetime decision index of this step.
    pub decision_index: u64,
    /// `true` when this outcome was served from the replay cache (an
    /// idempotent retry); the plant did not advance.
    pub replayed: bool,
}

/// Why a step was not served, typed so the HTTP layer can answer with
/// the right status.
#[derive(Debug, Clone)]
pub enum StepFailure {
    /// The decision panicked or the engine could not run it (`503
    /// decision_failed`).
    Failed(String),
    /// The request's `expect_index` is older than the replay cache
    /// retains — the outcome is unknowable (`409 replay_gap`).
    ReplayGap {
        /// The index the sender expected.
        expect: u64,
        /// The oldest index still cached.
        floor: u64,
    },
    /// The request's `expect_index` does not match the plant: it is
    /// ahead of the next decision, or a *different* request was already
    /// applied at that index (`409 index_conflict`).
    IndexConflict {
        /// The index the sender expected.
        expect: u64,
        /// The plant's lifetime decision count.
        decisions: u64,
    },
}

/// One replay-cache entry: the applied request's fingerprint plus its
/// outcome. The fingerprint (exact input bits) is what makes replay
/// sound under concurrent writers — a retry of the *same* request
/// replays, a *different* request aimed at a taken index conflicts.
struct ReplayEntry {
    demand_bits: u64,
    dt_bits: u64,
    outcome: StepOutcome,
}

/// What a reload did.
#[derive(Debug, Clone, Copy)]
pub struct ReloadOutcome {
    /// `true` when the plant was rebuilt (geometry/controller change).
    pub rebuilt: bool,
}

/// Messages the HTTP layer sends the engine. Every variant carries a
/// rendezvous `reply` channel; the engine never blocks on a reply — a
/// caller that timed out and went away just drops its receiver.
pub enum EngineMsg {
    /// Run one control step.
    Step {
        /// Offered normalized demand.
        demand: f64,
        /// Optional step-length override in seconds.
        dt_secs: Option<f64>,
        /// Idempotency key: the decision index the sender expects this
        /// step to land on (see [`crate::StepBody::expect_index`]).
        expect_index: Option<u64>,
        /// Where the outcome goes.
        reply: SyncSender<Result<StepOutcome, StepFailure>>,
    },
    /// Liveness probe: replies immediately if the engine is not wedged.
    Ping {
        /// Acknowledgement channel.
        reply: SyncSender<()>,
    },
    /// Swap in a validated config.
    Reload {
        /// The already-validated replacement config (boxed: a config is
        /// much larger than the other message variants).
        config: Box<ServiceConfig>,
        /// Where the outcome goes.
        reply: SyncSender<Result<ReloadOutcome, String>>,
    },
    /// Checkpoint and stop.
    Drain {
        /// Acknowledged once the final checkpoint is on disk.
        reply: SyncSender<()>,
    },
}

/// Since-boot service counters (all atomic; incremented by whichever
/// layer observed the event).
#[derive(Debug, Default)]
pub struct Counters {
    /// Physics-backed decisions served.
    pub served: AtomicU64,
    /// Requests that hit the decision deadline.
    pub timeouts: AtomicU64,
    /// Requests rejected by the bounded queue.
    pub backpressure: AtomicU64,
    /// Fail-safe decisions served while degraded.
    pub degraded_served: AtomicU64,
    /// Successful config reloads.
    pub reloads: AtomicU64,
    /// Rejected (rolled-back) config reloads.
    pub reloads_rejected: AtomicU64,
    /// Connections handed to the worker pool.
    pub connections_accepted: AtomicU64,
    /// Connections refused with a typed 503 (pool at capacity, or
    /// draining).
    pub connections_rejected: AtomicU64,
    /// Requests rejected by the HTTP parser with a typed 4xx.
    pub parse_rejects: AtomicU64,
    /// Idempotent retries answered from the replay cache.
    pub replays_served: AtomicU64,
}

/// The engine-maintained part of `/status`, refreshed after every
/// decision (and on boot/restore/rebuild) so reading status never has to
/// wait on — or wedge with — the engine.
#[derive(Debug, Clone)]
pub struct EngineStatus {
    /// Lifetime decisions (survives restarts via the checkpoint).
    pub decisions: u64,
    /// Plant hot-state observability.
    pub facility: FacilityStatus,
    /// Sprint lifecycle.
    pub sprint: SprintStatus,
    /// Recent-step telemetry.
    pub window: WindowStats,
}

/// State shared between the engine, the watchdog, and every connection
/// thread.
pub struct Shared {
    /// Current [`Mode`], encoded via [`Mode::as_u8`].
    pub mode: AtomicU8,
    /// The demand feed has gone silent past the configured window.
    pub stale_feed: AtomicBool,
    /// A decision overran its deadline and the engine has not yet proven
    /// healthy again.
    pub engine_overrun: AtomicBool,
    /// Milliseconds (since `started`) of the most recent `/step` arrival.
    pub last_feed_ms: AtomicU64,
    /// Fail-safe core count the degraded path actuates (the plant's
    /// normal, non-sprint count).
    pub failsafe_cores: AtomicU32,
    /// Config generation; bumped on each successful reload.
    pub config_generation: AtomicU64,
    /// Connections currently being served by pool workers (gauge).
    pub connections_active: AtomicU64,
    /// Requests currently being routed (gauge; a drain waits for this to
    /// reach zero).
    pub requests_in_flight: AtomicU64,
    /// Uptime milliseconds at which a drain began (`u64::MAX` before).
    pub drain_started_ms: AtomicU64,
    /// Process start, the epoch for `last_feed_ms` and uptime.
    pub started: Instant,
    /// Since-boot counters.
    pub counters: Counters,
    /// The engine's status snapshot.
    pub status: Mutex<EngineStatus>,
    /// The live config (connection threads read serving knobs from here).
    pub config: Mutex<Arc<ServiceConfig>>,
    /// The most recent rejected reload's error.
    pub last_reload_error: Mutex<Option<String>>,
}

impl Shared {
    /// Builds the shared block for a service booting with `config`.
    #[must_use]
    pub fn new(config: Arc<ServiceConfig>) -> Shared {
        let started = Instant::now();
        Shared {
            mode: AtomicU8::new(Mode::Serving.as_u8()),
            stale_feed: AtomicBool::new(false),
            engine_overrun: AtomicBool::new(false),
            last_feed_ms: AtomicU64::new(0),
            failsafe_cores: AtomicU32::new(0),
            config_generation: AtomicU64::new(1),
            connections_active: AtomicU64::new(0),
            requests_in_flight: AtomicU64::new(0),
            drain_started_ms: AtomicU64::new(u64::MAX),
            started,
            counters: Counters::default(),
            status: Mutex::new(EngineStatus {
                decisions: 0,
                facility: FacilityStatus {
                    time_secs: 0.0,
                    room_temperature_c: 0.0,
                    room_headroom_c: 0.0,
                    ups: UpsStatus {
                        state_of_charge: 0.0,
                        deliverable_wh: 0.0,
                        on_battery: 0,
                    },
                    tes: TesStatus {
                        state_of_charge: 0.0,
                        stored_wh: 0.0,
                    },
                    breakers: Vec::new(),
                },
                sprint: SprintStatus {
                    strategy: String::new(),
                    active: false,
                    terminated: false,
                },
                window: WindowStats::default(),
            }),
            config: Mutex::new(config),
            last_reload_error: Mutex::new(None),
        }
    }

    /// Current mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        Mode::from_u8(self.mode.load(Ordering::SeqCst))
    }

    /// Sets the mode, never overwriting `Draining`.
    pub fn set_mode(&self, mode: Mode) {
        let _ = self
            .mode
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |raw| {
                if Mode::from_u8(raw) == Mode::Draining {
                    None
                } else {
                    Some(mode.as_u8())
                }
            });
    }

    /// Milliseconds since the service started.
    #[must_use]
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// The current config.
    #[must_use]
    pub fn current_config(&self) -> Arc<ServiceConfig> {
        self.config.lock().expect("config lock").clone()
    }
}

/// Opens (creating if needed) the checkpoint store for `config`'s plant
/// and loads the newest intact snapshot. Each plant fingerprint gets its
/// own subdirectory, so a rebuild onto a different plant neither clashes
/// with nor clobbers the old plant's snapshots.
pub fn open_store(
    state_dir: &Path,
    config: &ServiceConfig,
) -> Result<(CheckpointStore, Option<ServiceHotState>), SimError> {
    let fingerprint = config.plant_fingerprint();
    let dir = state_dir.join(format!("plant-{fingerprint:016x}"));
    let store = CheckpointStore::open(&dir, HOT_STATE_KIND, fingerprint)?;
    let restored = match store.load_latest::<ServiceHotState>()? {
        Some(loaded) => {
            if loaded.payload.schema != HOT_STATE_SCHEMA {
                return Err(SimError::service(format!(
                    "unsupported hot-state schema {:?} in {}",
                    loaded.payload.schema,
                    dir.display()
                )));
            }
            Some(loaded.payload)
        }
        None => None,
    };
    Ok((store, restored))
}

/// Renders the plant's hot state for `/status`.
fn facility_status(facility: &FacilityState<'_>) -> FacilityStatus {
    let ups = facility.ups().status();
    let tes = facility.tes();
    let room = facility.room();
    let topo = facility.topology();
    let mut breakers = Vec::with_capacity(1 + topo.pdu_count());
    let mut push = |name: String, cb: &dcs_breaker::CircuitBreaker| {
        breakers.push(BreakerStatus {
            name,
            trip_progress: cb.trip_progress(),
            tripped: cb.is_tripped(),
            rated_w: cb.rated().as_watts(),
            no_trip_limit_w: cb.no_trip_limit().as_watts(),
        });
    };
    push("dc".to_string(), topo.dc_breaker());
    for (i, cb) in topo.pdu_breakers().iter().enumerate() {
        push(format!("pdu-{i}"), cb);
    }
    FacilityStatus {
        time_secs: facility.now().as_secs(),
        room_temperature_c: room.temperature().as_celsius(),
        room_headroom_c: room.headroom().as_celsius(),
        ups: UpsStatus {
            state_of_charge: ups.state_of_charge.as_f64(),
            deliverable_wh: ups.deliverable.as_watt_hours(),
            on_battery: ups.on_battery as u64,
        },
        tes: TesStatus {
            state_of_charge: tes.state_of_charge().as_f64(),
            stored_wh: tes.stored().as_watt_hours(),
        },
        breakers,
    }
}

/// Publishes a fresh engine snapshot into [`Shared::status`].
fn publish_status(
    shared: &Shared,
    decisions: u64,
    facility: &FacilityState<'_>,
    policy: &SprintPolicy,
    sink: &ServiceSink,
) {
    let snapshot = EngineStatus {
        decisions,
        facility: facility_status(facility),
        sprint: SprintStatus {
            strategy: policy.strategy_name().to_string(),
            active: policy.sprint_active(),
            terminated: policy.export_hot_state().terminated,
        },
        window: sink.window(),
    };
    *shared.status.lock().expect("status lock") = snapshot;
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "decision panicked".to_string()
    }
}

/// The engine thread body. Owns the plant; exits when a [`EngineMsg::Drain`]
/// arrives or every sender is gone.
pub fn run_engine(
    rx: &Receiver<EngineMsg>,
    shared: &Arc<Shared>,
    state_dir: Option<&Path>,
    chaos: &ChaosSchedule,
    mut store: Option<CheckpointStore>,
    mut restored: Option<ServiceHotState>,
) {
    let mut config = shared.current_config();
    // Outer loop: one iteration per plant. `store`/`restored` belong to
    // the plant `config` describes; a plant-changing reload replaces all
    // three and continues here.
    'plant: loop {
        let spec: DataCenterSpec = config.spec();
        let controller_config: ControllerConfig = config.controller();
        let mut facility = FacilityState::new(&spec, &controller_config);
        let mut policy = SprintPolicy::new(Box::new(Greedy), &spec);
        let mut sink = ServiceSink::with_window(config.window_steps());
        let mut decisions: u64 = 0;
        if let Some(hot) = restored.take() {
            decisions = hot.decisions;
            facility.import_hot_state(hot.facility);
            policy.import_hot_state(hot.policy);
        }
        shared
            .failsafe_cores
            .store(facility.normal_cores(), Ordering::SeqCst);
        publish_status(shared, decisions, &facility, &policy, &sink);
        let mut dirty = false;
        // Failed tries at the current decision index: chaos events target
        // (index, attempt), so a panicked decision index 0 retried by the
        // client is attempt 1 — one injected panic hits one request.
        let mut attempt: u32 = 0;
        // Bounded replay cache for idempotent retries: entries are
        // contiguous, ending at decision `decisions - 1`. Rebuilding the
        // plant resets it along with the decision count.
        let mut replay: VecDeque<ReplayEntry> = VecDeque::new();

        loop {
            let msg = match rx.recv() {
                Ok(msg) => msg,
                Err(_) => return,
            };
            match msg {
                EngineMsg::Ping { reply } => {
                    let _ = reply.try_send(());
                }
                EngineMsg::Step {
                    demand,
                    dt_secs,
                    expect_index,
                    reply,
                } => {
                    let index = decisions;
                    let dt = Seconds::new(dt_secs.unwrap_or_else(|| config.step_secs()));
                    // Idempotency gate: a replayed or conflicting request
                    // is answered without touching the plant (and without
                    // consuming a chaos event or an attempt).
                    if let Some(expect) = expect_index {
                        if expect > index {
                            let _ = reply.try_send(Err(StepFailure::IndexConflict {
                                expect,
                                decisions: index,
                            }));
                            continue;
                        }
                        if expect < index {
                            let floor = index - replay.len() as u64;
                            if expect < floor {
                                let _ =
                                    reply.try_send(Err(StepFailure::ReplayGap { expect, floor }));
                            } else {
                                let entry = &replay[usize::try_from(expect - floor)
                                    .expect("replay cache is bounded")];
                                if entry.demand_bits == demand.to_bits()
                                    && entry.dt_bits == dt.as_secs().to_bits()
                                {
                                    shared
                                        .counters
                                        .replays_served
                                        .fetch_add(1, Ordering::SeqCst);
                                    let mut outcome = entry.outcome.clone();
                                    outcome.replayed = true;
                                    let _ = reply.try_send(Ok(outcome));
                                } else {
                                    let _ = reply.try_send(Err(StepFailure::IndexConflict {
                                        expect,
                                        decisions: index,
                                    }));
                                }
                            }
                            continue;
                        }
                    }
                    let injected =
                        chaos.lookup(usize::try_from(index).unwrap_or(usize::MAX), attempt);
                    if let Some(ChaosKind::Delay { millis }) = injected {
                        std::thread::sleep(std::time::Duration::from_millis(*millis));
                    }
                    let chaos_panic = matches!(injected, Some(ChaosKind::Panic));
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        assert!(!chaos_panic, "chaos: injected decision panic");
                        let input = StepInput::nominal(facility.now(), demand, dt);
                        step_cycle(&mut facility, &mut policy, &input, &mut sink)
                    }));
                    match outcome {
                        Ok(effects) => {
                            decisions += 1;
                            attempt = 0;
                            dirty = true;
                            if decisions.is_multiple_of(config.checkpoint_every()) {
                                if let Some(store) = store.as_mut() {
                                    let hot = ServiceHotState {
                                        schema: HOT_STATE_SCHEMA.to_string(),
                                        decisions,
                                        facility: facility.export_hot_state(),
                                        policy: policy.export_hot_state(),
                                    };
                                    if let Err(e) = store.save(&hot) {
                                        eprintln!("sprintd: checkpoint failed: {e}");
                                    } else {
                                        dirty = false;
                                    }
                                }
                            }
                            publish_status(shared, decisions, &facility, &policy, &sink);
                            let outcome = StepOutcome {
                                record: effects.record,
                                decision_index: index,
                                replayed: false,
                            };
                            replay.push_back(ReplayEntry {
                                demand_bits: demand.to_bits(),
                                dt_bits: dt.as_secs().to_bits(),
                                outcome: outcome.clone(),
                            });
                            while replay.len() > config.replay_cache() {
                                replay.pop_front();
                            }
                            let _ = reply.try_send(Ok(outcome));
                        }
                        Err(payload) => {
                            attempt = attempt.saturating_add(1);
                            let _ =
                                reply.try_send(Err(StepFailure::Failed(panic_message(payload))));
                        }
                    }
                }
                EngineMsg::Reload {
                    config: new_config,
                    reply,
                } => {
                    if config.same_plant(&new_config) {
                        let new_config = Arc::new(*new_config);
                        if new_config.window_steps() != config.window_steps() {
                            sink = ServiceSink::with_window(new_config.window_steps());
                        }
                        config = new_config.clone();
                        *shared.config.lock().expect("config lock") = new_config;
                        shared.config_generation.fetch_add(1, Ordering::SeqCst);
                        publish_status(shared, decisions, &facility, &policy, &sink);
                        let _ = reply.try_send(Ok(ReloadOutcome { rebuilt: false }));
                    } else {
                        // A different plant: open its store first so a
                        // failure rolls back to the running config.
                        let opened = match state_dir {
                            Some(dir) => match open_store(dir, &new_config) {
                                Ok((s, r)) => Some((Some(s), r)),
                                Err(e) => {
                                    let _ = reply.try_send(Err(e.to_string()));
                                    None
                                }
                            },
                            None => Some((None, None)),
                        };
                        if let Some((new_store, new_restored)) = opened {
                            let new_config = Arc::new(*new_config);
                            config = new_config.clone();
                            *shared.config.lock().expect("config lock") = new_config;
                            shared.config_generation.fetch_add(1, Ordering::SeqCst);
                            store = new_store;
                            restored = new_restored;
                            let _ = reply.try_send(Ok(ReloadOutcome { rebuilt: true }));
                            continue 'plant;
                        }
                    }
                }
                EngineMsg::Drain { reply } => {
                    if dirty {
                        if let Some(store) = store.as_mut() {
                            let hot = ServiceHotState {
                                schema: HOT_STATE_SCHEMA.to_string(),
                                decisions,
                                facility: facility.export_hot_state(),
                                policy: policy.export_hot_state(),
                            };
                            if let Err(e) = store.save(&hot) {
                                eprintln!("sprintd: final checkpoint failed: {e}");
                            }
                        }
                    }
                    let _ = reply.try_send(());
                    return;
                }
            }
        }
    }
}
