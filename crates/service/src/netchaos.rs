//! A deterministic fault-injecting TCP proxy for network-chaos testing.
//!
//! [`ChaosProxy`] sits between a client and `sprintd`, forwarding bytes
//! both ways while injecting transport faults — connection resets,
//! truncations (clean FIN mid-message), stalls, and trickled one-byte
//! writes — according to a plan derived *only* from the proxy seed and
//! the connection's accept index. Two runs with the same seed and the
//! same connection order inject exactly the same faults, which is what
//! lets the soak suite in `tests/soak.rs` assert bit-identical post-soak
//! state against a clean run: the chaos is adversarial but replayable.
//!
//! The taxonomy ([`FaultKind`]) covers the transport failures a control
//! daemon on a hostile network actually sees:
//!
//! - **Reset**: `SO_LINGER(0)` is armed and the socket dropped after a
//!   byte threshold, so the peer gets a hard RST mid-exchange (the
//!   ambiguous case: the request may or may not have been applied).
//! - **Truncate**: the stream is cleanly shut down after a threshold —
//!   a torn request or a half-delivered response.
//! - **Stall**: forwarding pauses once at a threshold, exercising read
//!   budgets and slowloris guards.
//! - **Trickle**: bytes are forwarded in tiny chunks with delays,
//!   exercising torn-read resumption in the parser.
//!
//! Each fault targets one [`FaultDirection`]; the other direction
//! forwards untouched.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often a blocked proxy read wakes to poll the stop flag.
const TICK: Duration = Duration::from_millis(50);
/// Hard cap on an injected stall, so chaos never becomes a hang.
const MAX_STALL: Duration = Duration::from_millis(500);

/// Which direction of the connection a fault is injected into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDirection {
    /// Bytes flowing from the client toward the service (requests).
    ClientToServer,
    /// Bytes flowing from the service toward the client (responses).
    ServerToClient,
}

/// One injected transport fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Forward untouched.
    None,
    /// Forward `after_bytes`, then hard-reset both sockets (RST).
    Reset {
        /// Bytes forwarded before the reset.
        after_bytes: u64,
    },
    /// Forward `after_bytes`, then cleanly shut the connection down.
    Truncate {
        /// Bytes forwarded before the FIN.
        after_bytes: u64,
    },
    /// Pause forwarding once, `millis` long, at `at_bytes`.
    Stall {
        /// Byte threshold that triggers the pause.
        at_bytes: u64,
        /// Pause length in milliseconds (capped at `MAX_STALL`, 500 ms,
        /// so zero-hang stays provable).
        millis: u64,
    },
    /// Forward in `chunk`-byte pieces with `delay_micros` between them,
    /// for the first `budget_bytes` of the connection (then forward
    /// normally — keep-alive connections must not crawl forever).
    Trickle {
        /// Bytes per write.
        chunk: usize,
        /// Delay between writes, in microseconds.
        delay_micros: u64,
        /// Bytes trickled before the connection returns to full speed.
        budget_bytes: u64,
    },
}

/// The full per-connection plan: what fault, in which direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The fault to inject ([`FaultKind::None`] for a clean connection).
    pub kind: FaultKind,
    /// The direction it applies to.
    pub direction: FaultDirection,
}

/// Since-start proxy counters.
#[derive(Debug, Default)]
pub struct ProxyStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections that could not reach the upstream service.
    pub upstream_failures: AtomicU64,
    /// Injected hard resets.
    pub resets: AtomicU64,
    /// Injected truncations.
    pub truncations: AtomicU64,
    /// Injected stalls.
    pub stalls: AtomicU64,
    /// Connections forwarded with trickled writes.
    pub trickles: AtomicU64,
}

/// A running chaos proxy.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    stats: Arc<ProxyStats>,
}

fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

impl ChaosProxy {
    /// Binds `127.0.0.1:0` and starts proxying to `upstream`.
    ///
    /// `fault_per_mille` is the per-connection fault probability in
    /// 0..=1000; the draw — and every fault parameter — depends only on
    /// `seed` and the connection's accept index, so a rerun with the
    /// same seed and connection order replays identical chaos.
    pub fn spawn(
        upstream: SocketAddr,
        seed: u64,
        fault_per_mille: u32,
    ) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(ProxyStats::default());
        let acceptor = {
            let stop = stop.clone();
            let conns = conns.clone();
            let stats = stats.clone();
            std::thread::Builder::new()
                .name("chaos-accept".to_string())
                .spawn(move || {
                    run_accept(
                        &listener,
                        upstream,
                        seed,
                        fault_per_mille,
                        &stop,
                        &conns,
                        &stats,
                    );
                })?
        };
        Ok(ChaosProxy {
            addr,
            stop,
            acceptor: Some(acceptor),
            conns,
            stats,
        })
    }

    /// The proxy's listening address (point clients here).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The proxy's counters.
    #[must_use]
    pub fn stats(&self) -> &Arc<ProxyStats> {
        &self.stats
    }

    /// The deterministic plan for connection number `conn_index` under
    /// `seed`/`fault_per_mille` — exposed so tests can predict and
    /// document exactly which connections get which faults.
    #[must_use]
    pub fn plan_for(seed: u64, conn_index: u64, fault_per_mille: u32) -> FaultPlan {
        let mut s = seed
            ^ conn_index.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ 0xDEAD_BEEF_CAFE_F00D_u64.rotate_left((conn_index % 63) as u32);
        if s == 0 {
            s = 0xBAD_5EED;
        }
        // Warm the generator out of any low-entropy seed neighborhood.
        for _ in 0..3 {
            xorshift64(&mut s);
        }
        let direction = if xorshift64(&mut s).is_multiple_of(2) {
            FaultDirection::ClientToServer
        } else {
            FaultDirection::ServerToClient
        };
        let roll = xorshift64(&mut s) % 1000;
        let kind = if roll >= u64::from(fault_per_mille) {
            FaultKind::None
        } else {
            match xorshift64(&mut s) % 4 {
                0 => FaultKind::Reset {
                    after_bytes: 4 + xorshift64(&mut s) % 512,
                },
                1 => FaultKind::Truncate {
                    after_bytes: 4 + xorshift64(&mut s) % 256,
                },
                2 => FaultKind::Stall {
                    at_bytes: xorshift64(&mut s) % 128,
                    millis: 20 + xorshift64(&mut s) % 180,
                },
                _ => FaultKind::Trickle {
                    chunk: 1 + (xorshift64(&mut s) % 7) as usize,
                    delay_micros: 100 + xorshift64(&mut s) % 700,
                    budget_bytes: 256 + xorshift64(&mut s) % 1792,
                },
            }
        };
        FaultPlan { kind, direction }
    }

    /// Stops accepting, tears down every live connection, joins threads.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handles = std::mem::take(&mut *self.conns.lock().expect("conns lock"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.halt();
        }
    }
}

/// `true` for the error kinds a timed-out blocking read produces.
fn is_wait(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Arms `SO_LINGER(0)` so the socket's close sends an RST instead of a
/// graceful FIN. Raw FFI because the workspace is std-only (no libc).
fn arm_reset(stream: &TcpStream) {
    #[cfg(unix)]
    {
        use std::os::unix::io::AsRawFd;
        #[repr(C)]
        struct Linger {
            l_onoff: i32,
            l_linger: i32,
        }
        extern "C" {
            fn setsockopt(
                fd: i32,
                level: i32,
                name: i32,
                value: *const std::ffi::c_void,
                len: u32,
            ) -> i32;
        }
        const SOL_SOCKET: i32 = 1;
        const SO_LINGER: i32 = 13;
        let linger = Linger {
            l_onoff: 1,
            l_linger: 0,
        };
        // SAFETY: fd is a live socket owned by `stream`; the option
        // struct matches the kernel's `struct linger` layout on Linux.
        unsafe {
            setsockopt(
                stream.as_raw_fd(),
                SOL_SOCKET,
                SO_LINGER,
                (&raw const linger).cast(),
                u32::try_from(std::mem::size_of::<Linger>()).expect("linger size"),
            );
        }
    }
    #[cfg(not(unix))]
    let _ = stream;
}

fn run_accept(
    listener: &TcpListener,
    upstream: SocketAddr,
    seed: u64,
    fault_per_mille: u32,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    stats: &Arc<ProxyStats>,
) {
    let mut conn_index: u64 = 0;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                stats.connections.fetch_add(1, Ordering::SeqCst);
                let plan = ChaosProxy::plan_for(seed, conn_index, fault_per_mille);
                conn_index += 1;
                let stop = stop.clone();
                let stats = stats.clone();
                let spawned = std::thread::Builder::new()
                    .name("chaos-conn".to_string())
                    .spawn(move || run_connection(client, upstream, plan, &stop, &stats));
                match spawned {
                    Ok(handle) => conns.lock().expect("conns lock").push(handle),
                    Err(_) => {
                        // Out of threads: the peer gets a close, which a
                        // hardened client treats as any other transport
                        // fault.
                    }
                }
            }
            Err(e) if is_wait(&e) => std::thread::sleep(Duration::from_millis(2)),
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn run_connection(
    client: TcpStream,
    upstream: SocketAddr,
    plan: FaultPlan,
    stop: &Arc<AtomicBool>,
    stats: &Arc<ProxyStats>,
) {
    let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(2)) else {
        stats.upstream_failures.fetch_add(1, Ordering::SeqCst);
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let client = Arc::new(client);
    let server = Arc::new(server);
    if matches!(plan.kind, FaultKind::Trickle { .. }) {
        stats.trickles.fetch_add(1, Ordering::SeqCst);
    }
    let (c2s, s2c) = match plan.direction {
        FaultDirection::ClientToServer => (plan.kind, FaultKind::None),
        FaultDirection::ServerToClient => (FaultKind::None, plan.kind),
    };
    let downstream = {
        let client = client.clone();
        let server = server.clone();
        let stop = stop.clone();
        let stats = stats.clone();
        std::thread::Builder::new()
            .name("chaos-pump".to_string())
            .spawn(move || pump(&server, &client, s2c, &stop, &stats))
    };
    pump(&client, &server, c2s, stop, stats);
    if let Ok(handle) = downstream {
        let _ = handle.join();
    }
}

/// Forwards bytes `src` → `dst`, injecting `fault`. Exits when either
/// side closes, the fault cuts the connection, or the proxy stops.
fn pump(
    src: &Arc<TcpStream>,
    dst: &Arc<TcpStream>,
    fault: FaultKind,
    stop: &Arc<AtomicBool>,
    stats: &Arc<ProxyStats>,
) {
    let _ = src.set_read_timeout(Some(TICK));
    let mut copied: u64 = 0;
    let mut stalled = false;
    let mut buf = [0_u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let n = match (&**src).read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if is_wait(&e) => continue,
            Err(_) => break,
        };
        let mut chunk = &buf[..n];
        if let FaultKind::Stall { at_bytes, millis } = fault {
            if !stalled && copied + chunk.len() as u64 > at_bytes {
                stalled = true;
                stats.stalls.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(millis).min(MAX_STALL));
            }
        }
        let cut = match fault {
            FaultKind::Reset { after_bytes } | FaultKind::Truncate { after_bytes } => {
                let room =
                    usize::try_from(after_bytes.saturating_sub(copied)).unwrap_or(usize::MAX);
                if chunk.len() >= room {
                    chunk = &chunk[..room];
                    true
                } else {
                    false
                }
            }
            _ => false,
        };
        let wrote = match fault {
            FaultKind::Trickle {
                chunk: piece,
                delay_micros,
                budget_bytes,
            } if copied < budget_bytes => write_trickled(dst, chunk, piece.max(1), delay_micros),
            _ => (&**dst).write_all(chunk).is_ok(),
        };
        copied += chunk.len() as u64;
        if cut {
            if matches!(fault, FaultKind::Reset { .. }) {
                stats.resets.fetch_add(1, Ordering::SeqCst);
                arm_reset(dst);
                arm_reset(src);
            } else {
                stats.truncations.fetch_add(1, Ordering::SeqCst);
            }
            break;
        }
        if !wrote {
            break;
        }
    }
    // Wake the opposite pump so the pair tears down together; the armed
    // linger (if any) turns the close into an RST.
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

fn write_trickled(dst: &Arc<TcpStream>, bytes: &[u8], piece: usize, delay_micros: u64) -> bool {
    for part in bytes.chunks(piece) {
        if (&**dst).write_all(part).is_err() {
            return false;
        }
        std::thread::sleep(Duration::from_micros(delay_micros));
    }
    true
}
