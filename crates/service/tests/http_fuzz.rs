//! Fuzz/property suite for the hardened HTTP parser (`dcs_service::http`).
//!
//! Drives `read_request` with adversarial in-memory streams: random
//! garbage, torn reads at every byte boundary, pipelined requests,
//! pathological `Content-Length` values, invalid UTF-8. The parser must
//! never panic, must answer malformed input with typed 4xx rejects, and
//! must parse identically regardless of how the bytes are torn across
//! reads — the property that rules out keep-alive desync.

use std::io::{BufRead, ErrorKind, Read};
use std::time::Duration;

use dcs_service::http::{read_request, ReadOutcome};
use proptest::prelude::*;

const BUDGET: Duration = Duration::from_secs(60);

/// In-memory stream that serves at most `chunk` bytes per fill and
/// returns a `WouldBlock` "tick" between fills, mimicking a socket
/// with a short read timeout firing mid-request.
struct Feed {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
    tick: bool,
    pending_tick: bool,
}

impl Feed {
    fn new(data: impl Into<Vec<u8>>, chunk: usize, tick: bool) -> Feed {
        Feed {
            data: data.into(),
            pos: 0,
            chunk: chunk.max(1),
            tick,
            pending_tick: false,
        }
    }

    /// The whole stream in one read, no ticks — the reference parse.
    fn whole(data: impl Into<Vec<u8>>) -> Feed {
        Feed::new(data, usize::MAX, false)
    }
}

impl Read for Feed {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let available = self.fill_buf()?;
        let n = available.len().min(buf.len());
        buf[..n].copy_from_slice(&available[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl BufRead for Feed {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        if self.tick && self.pending_tick && self.pos < self.data.len() {
            self.pending_tick = false;
            return Err(std::io::Error::new(ErrorKind::WouldBlock, "tick"));
        }
        self.pending_tick = true;
        let end = self.data.len().min(self.pos.saturating_add(self.chunk));
        Ok(&self.data[self.pos..end])
    }

    fn consume(&mut self, amt: usize) {
        self.pos = (self.pos + amt).min(self.data.len());
    }
}

/// Reads one request, looping on `Idle` the way the connection worker
/// does (a timeout tick between requests is keep-alive patience, not an
/// outcome).
fn parse(feed: &mut Feed) -> ReadOutcome {
    loop {
        match read_request(feed, BUDGET, &mut || false) {
            ReadOutcome::Idle => {}
            other => return other,
        }
    }
}

/// Canonical comparable form of an outcome (messages excluded — only
/// the typed surface matters for desync checks).
fn signature(outcome: &ReadOutcome) -> String {
    match outcome {
        ReadOutcome::Ok(r) => format!("ok:{}:{}:{:?}:{}", r.method, r.path, r.body, r.close),
        ReadOutcome::Closed => "closed".to_string(),
        ReadOutcome::Idle => "idle".to_string(),
        ReadOutcome::Reject { status, kind, .. } => format!("reject:{status}:{kind}"),
    }
}

#[test]
fn well_formed_request_parses() {
    let wire = b"POST /step HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world".to_vec();
    match parse(&mut Feed::whole(wire)) {
        ReadOutcome::Ok(req) => {
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/step");
            assert_eq!(req.body, b"hello world");
            assert!(!req.close);
        }
        other => panic!("expected Ok, got {other:?}"),
    }
}

#[test]
fn torn_reads_parse_identically_at_every_boundary() {
    let wire = b"POST /step HTTP/1.1\r\ncontent-length: 11\r\nConnection: close\r\n\r\nhello world";
    let reference = signature(&parse(&mut Feed::whole(wire.to_vec())));
    for chunk in 1..=wire.len() {
        let torn = signature(&parse(&mut Feed::new(wire.to_vec(), chunk, true)));
        assert_eq!(torn, reference, "chunk size {chunk}");
    }
}

#[test]
fn pipelined_requests_stay_in_sync() {
    let mut wire = Vec::new();
    for (path, body) in [("/a", "x"), ("/bb", "yy and more"), ("/ccc", "")] {
        wire.extend_from_slice(
            format!(
                "POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        );
    }
    let mut feed = Feed::new(wire, 3, true);
    for (path, body) in [("/a", "x"), ("/bb", "yy and more"), ("/ccc", "")] {
        match parse(&mut feed) {
            ReadOutcome::Ok(req) => {
                assert_eq!(req.path, path);
                assert_eq!(req.body, body.as_bytes());
            }
            other => panic!("expected {path}, got {other:?}"),
        }
    }
    assert!(matches!(parse(&mut feed), ReadOutcome::Closed));
}

#[test]
fn pathological_content_lengths_are_typed() {
    let cases: &[(&str, u16, &str)] = &[
        ("-1", 400, "bad_request"),
        ("+5", 400, "bad_request"),
        ("18446744073709551616", 400, "bad_request"),
        ("0x10", 400, "bad_request"),
        ("1 2", 400, "bad_request"),
        ("", 400, "bad_request"),
        ("65537", 413, "payload_too_large"),
        ("999999999", 413, "payload_too_large"),
    ];
    for &(value, want_status, want_kind) in cases {
        let wire = format!("POST /step HTTP/1.1\r\ncontent-length: {value}\r\n\r\n").into_bytes();
        match parse(&mut Feed::whole(wire)) {
            ReadOutcome::Reject { status, kind, .. } => {
                assert_eq!((status, kind), (want_status, want_kind), "value {value:?}");
            }
            other => panic!("content-length {value:?}: expected reject, got {other:?}"),
        }
    }
}

#[test]
fn oversized_head_rejects_431() {
    // One giant request line.
    let mut wire = b"GET /".to_vec();
    wire.extend(std::iter::repeat_n(b'a', 9 * 1024));
    wire.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    match parse(&mut Feed::whole(wire)) {
        ReadOutcome::Reject { status, kind, .. } => {
            assert_eq!((status, kind), (431, "headers_too_large"));
        }
        other => panic!("expected 431, got {other:?}"),
    }

    // Reasonable request line, bloated headers.
    let mut wire = b"GET /status HTTP/1.1\r\n".to_vec();
    for i in 0..200 {
        wire.extend_from_slice(format!("x-pad-{i}: {}\r\n", "b".repeat(64)).as_bytes());
    }
    wire.extend_from_slice(b"\r\n");
    match parse(&mut Feed::new(wire, 7, true)) {
        ReadOutcome::Reject { status, kind, .. } => {
            assert_eq!((status, kind), (431, "headers_too_large"));
        }
        other => panic!("expected 431, got {other:?}"),
    }
}

#[test]
fn invalid_utf8_rejects_400() {
    for wire in [
        b"G\xffT /status HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /status HTTP/1.1\r\nx-bin: \xfe\xff\r\n\r\n".to_vec(),
    ] {
        match parse(&mut Feed::whole(wire)) {
            ReadOutcome::Reject { status, kind, .. } => {
                assert_eq!((status, kind), (400, "bad_request"));
            }
            other => panic!("expected 400, got {other:?}"),
        }
    }
}

#[test]
fn unsupported_framing_rejects_400() {
    let cases: &[&[u8]] = &[
        b"GET /status HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
        b"GET /status HTTP/2\r\n\r\n",
        b"GET /status HTTP/1.1 extra\r\n\r\n",
        b"GET\r\n\r\n",
        b"GET /status HTTP/1.1\r\nno-colon-here\r\n\r\n",
    ];
    for wire in cases {
        match parse(&mut Feed::whole(wire.to_vec())) {
            ReadOutcome::Reject { status, kind, .. } => {
                assert_eq!((status, kind), (400, "bad_request"), "{wire:?}");
            }
            other => panic!("{wire:?}: expected 400, got {other:?}"),
        }
    }
}

#[test]
fn truncated_requests_reject_400() {
    let cases: &[&[u8]] = &[
        b"POST /step HTTP/1.1\r\ncontent-length: 5\r\n\r\nab", // body cut short
        b"GET /status HTTP/1.1\r\nhost: x",                    // headers cut short
        b"GET /status HTTP/1.1",                               // request line cut short
    ];
    for wire in cases {
        match parse(&mut Feed::whole(wire.to_vec())) {
            ReadOutcome::Reject { status, kind, .. } => {
                assert_eq!((status, kind), (400, "bad_request"), "{wire:?}");
            }
            other => panic!("{wire:?}: expected 400, got {other:?}"),
        }
    }
}

#[test]
fn empty_stream_is_closed() {
    assert!(matches!(
        parse(&mut Feed::whole(Vec::new())),
        ReadOutcome::Closed
    ));
}

#[test]
fn stop_abandons_a_waiting_read() {
    let mut feed = Feed::new(b"GET /status".to_vec(), 1, true);
    let outcome = read_request(&mut feed, BUDGET, &mut || true);
    assert!(matches!(outcome, ReadOutcome::Closed));
}

#[test]
fn slow_request_overruns_budget_with_408() {
    // Every byte arrives after a tick and the budget is zero: the guard
    // must fire as soon as the first mid-request wait is observed.
    let mut feed = Feed::new(b"GET /status HTTP/1.1\r\n\r\n".to_vec(), 1, true);
    match read_request(&mut feed, Duration::ZERO, &mut || false) {
        ReadOutcome::Reject { status, kind, .. } => {
            assert_eq!((status, kind), (408, "request_timeout"));
        }
        other => panic!("expected 408, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes never panic the parser and never yield anything
    /// but a typed 4xx, a clean close, or (for byte soup that happens
    /// to be well-formed) a parsed request.
    #[test]
    fn random_bytes_yield_typed_outcomes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        match parse(&mut Feed::whole(bytes)) {
            ReadOutcome::Ok(_) | ReadOutcome::Closed => {}
            ReadOutcome::Idle => prop_assert!(false, "idle without a read timeout"),
            ReadOutcome::Reject { status, .. } => {
                prop_assert!(matches!(status, 400 | 413 | 431), "status {status}");
            }
        }
    }

    /// Tearing the same bytes across arbitrary read boundaries (with
    /// timeout ticks between every fill) changes nothing about the
    /// outcome — the resumable parser cannot desync.
    #[test]
    fn torn_reads_agree_with_whole_reads(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        chunk in 1_usize..32,
    ) {
        let reference = signature(&parse(&mut Feed::whole(bytes.clone())));
        let torn = signature(&parse(&mut Feed::new(bytes, chunk, true)));
        prop_assert_eq!(torn, reference);
    }

    /// Well-formed requests round-trip exactly under torn reads.
    #[test]
    fn valid_requests_roundtrip_under_torn_reads(
        seg_bytes in proptest::collection::vec(b'a'..=b'z', 1..12),
        body in proptest::collection::vec(any::<u8>(), 0..96),
        chunk in 1_usize..24,
    ) {
        let seg = String::from_utf8(seg_bytes).expect("ascii segment");
        let mut wire = format!(
            "POST /{seg} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            body.len()
        )
        .into_bytes();
        wire.extend_from_slice(&body);
        match parse(&mut Feed::new(wire, chunk, true)) {
            ReadOutcome::Ok(req) => {
                prop_assert_eq!(req.method, "POST");
                prop_assert_eq!(req.path, format!("/{seg}"));
                prop_assert_eq!(req.body, body);
                prop_assert!(req.close);
            }
            other => prop_assert!(false, "expected Ok, got {other:?}"),
        }
    }
}
