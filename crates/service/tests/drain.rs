//! Graceful-drain tests: shutdown under concurrent load finishes every
//! in-flight request inside the drain deadline, lands a final
//! checkpoint, reports drain state over still-open connections, and
//! refuses new work with typed statuses. The signal path is exercised
//! end-to-end against the real `sprintd` binary with `SIGTERM`.

mod common;

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

// KeepAlive matters here: a persistent connection is the only vantage
// point that can observe `/status` *during* a drain, because new
// connections are refused at the acceptor.
use common::{request, scratch_dir, step, KeepAlive};
use dcs_faults::ChaosSchedule;
use dcs_service::{ErrorBody, ServiceConfig, ServiceOptions, SprintService, StatusBody};

fn parse<T: serde::Deserialize>(body: &str) -> T {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad body {body:?}: {e}"))
}

#[test]
fn drain_finishes_in_flight_and_checkpoints() {
    let state_dir = scratch_dir("drain-ckpt");
    let mut config = ServiceConfig::for_facility(2, 20);
    config.deadline_ms = Some(5_000);
    // Far beyond the decision count: the only checkpoint that can
    // explain a restored count is the drain's final one.
    config.checkpoint_every = Some(1_000);
    let options = ServiceOptions {
        state_dir: Some(state_dir.clone()),
        // Park decision 3 in the engine so the drain starts with a
        // request genuinely in flight.
        chaos: ChaosSchedule::delay_on(3, 0, 600),
    };
    let service = SprintService::spawn(config.clone(), options, 0).expect("spawn");
    let addr = service.addr();
    for _ in 0..3 {
        let (status, body) = step(addr, 0.6);
        assert_eq!(status, 200, "{body}");
    }

    let parked = std::thread::spawn(move || step(addr, 2.6));
    std::thread::sleep(Duration::from_millis(150));

    let begun = Instant::now();
    let (status, body) = request(addr, "POST", "/shutdown", None);
    assert_eq!(status, 200, "{body}");

    // New work is refused with the typed status, not silently dropped.
    let (status, body) = step(addr, 0.5);
    assert_eq!(status, 503, "{body}");
    assert_eq!(parse::<ErrorBody>(&body).error.kind, "draining");

    // The in-flight decision completes, and the whole drain (in-flight
    // wait + final checkpoint) lands well inside the drain deadline.
    let (status, body) = parked.join().expect("parked step");
    assert_eq!(status, 200, "{body}");
    while !service.engine_finished() {
        assert!(
            begun.elapsed() < Duration::from_secs(4),
            "drain overran the deadline"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    service.join();

    // Second life on the same state dir: all 4 decisions are there even
    // though no periodic checkpoint ever fired — the drain wrote one.
    let options = ServiceOptions {
        state_dir: Some(state_dir.clone()),
        chaos: ChaosSchedule::none(),
    };
    let service = SprintService::spawn(config, options, 0).expect("respawn");
    let (status, body) = request(service.addr(), "GET", "/status", None);
    assert_eq!(status, 200, "{body}");
    assert_eq!(parse::<StatusBody>(&body).decisions, 4);
    service.shutdown();
    std::fs::remove_dir_all(&state_dir).ok();
}

#[test]
fn drain_state_is_visible_on_open_connections() {
    let mut config = ServiceConfig::for_facility(2, 20);
    config.deadline_ms = Some(5_000);
    let options = ServiceOptions {
        state_dir: None,
        chaos: ChaosSchedule::delay_on(1, 0, 800),
    };
    let service = SprintService::spawn(config, options, 0).expect("spawn");
    let addr = service.addr();
    let (status, _) = step(addr, 0.6);
    assert_eq!(status, 200);

    let mut probe = KeepAlive::connect(addr);
    let (status, body) = probe.get("/status");
    assert_eq!(status, 200, "{body}");
    let before: StatusBody = parse(&body);
    assert!(!before.drain.draining);
    assert!(before.drain.since_ms.is_none());

    let parked = std::thread::spawn(move || step(addr, 2.6));
    std::thread::sleep(Duration::from_millis(150));
    service.drain();

    // The already-open connection still answers /status and reports the
    // drain: mode flipped, start stamped, the parked request counted.
    let (status, body) = probe.get("/status");
    assert_eq!(status, 200, "{body}");
    let during: StatusBody = parse(&body);
    assert_eq!(during.mode, "draining");
    assert!(during.drain.draining);
    assert!(during.drain.since_ms.is_some());
    assert!(
        during.drain.requests_in_flight >= 2,
        "parked step + this probe should both be in flight, got {}",
        during.drain.requests_in_flight
    );

    let (status, body) = parked.join().expect("parked step");
    assert_eq!(status, 200, "{body}");
    service.join();
}

fn spawn_sprintd(config_path: &Path, state_dir: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sprintd"))
        .arg(config_path)
        .arg("--state-dir")
        .arg(state_dir)
        .arg("--port")
        .arg("0")
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn sprintd");
    let stdout = child.stdout.take().expect("stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected boot line {line:?}"))
        .parse()
        .expect("parse addr");
    (child, addr)
}

#[test]
fn sigterm_drains_sprintd_cleanly() {
    let root = scratch_dir("sigterm");
    std::fs::create_dir_all(&root).expect("mkdir");
    let config_path = root.join("service.json");
    let state_dir = root.join("state");
    // checkpoint_every=1000: only a drain checkpoint can persist these
    // decisions.
    std::fs::write(
        &config_path,
        r#"{"pdus":2,"servers_per_pdu":20,"checkpoint_every":1000}"#,
    )
    .expect("write config");

    let (mut child, addr) = spawn_sprintd(&config_path, &state_dir);
    for _ in 0..5 {
        let (status, body) = step(addr, 0.7);
        assert_eq!(status, 200, "{body}");
    }

    let killed = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(killed.success());
    let exit = child.wait().expect("reap");
    assert!(exit.success(), "SIGTERM drain should exit 0, got {exit:?}");

    // Second life: the signal-initiated drain checkpointed all 5
    // decisions before exiting.
    let (mut child, addr) = spawn_sprintd(&config_path, &state_dir);
    let (status, body) = request(addr, "GET", "/status", None);
    assert_eq!(status, 200, "{body}");
    let resumed: StatusBody = parse(&body);
    assert_eq!(resumed.decisions, 5, "drain checkpoint survived the exit");

    let (status, _) = request(addr, "POST", "/shutdown", None);
    assert_eq!(status, 200);
    child.wait().expect("reap");
    std::fs::remove_dir_all(&root).ok();
}
