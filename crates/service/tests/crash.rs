//! The headline crash-safety test: boot the real `sprintd` binary, drive
//! it mid-sprint, `kill -9` it, restart on the same state directory, and
//! assert the plant's hot state — breaker thermal memory, UPS and TES
//! charge, room temperature — resumes bit-identically.

mod common;

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};

use common::{request, scratch_dir, step};
use dcs_service::StatusBody;

fn spawn_sprintd(config_path: &Path, state_dir: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sprintd"))
        .arg(config_path)
        .arg("--state-dir")
        .arg(state_dir)
        .arg("--port")
        .arg("0")
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn sprintd");
    let stdout = child.stdout.take().expect("stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected boot line {line:?}"))
        .parse()
        .expect("parse addr");
    (child, addr)
}

#[test]
fn kill_dash_nine_resumes_bit_identically() {
    let root = scratch_dir("crash");
    std::fs::create_dir_all(&root).expect("mkdir");
    let config_path = root.join("service.json");
    let state_dir = root.join("state");
    // checkpoint_every=1: every decision is durable before its response.
    std::fs::write(
        &config_path,
        r#"{"pdus":2,"servers_per_pdu":20,"checkpoint_every":1}"#,
    )
    .expect("write config");

    // First life: drive the plant into a sprint so the hot state is
    // nontrivial (breaker heat accumulated, UPS/TES partially drained).
    let (mut child, addr) = spawn_sprintd(&config_path, &state_dir);
    for i in 0..15 {
        let demand = if i >= 4 { 2.6 } else { 0.6 };
        let (status, body) = step(addr, demand);
        assert_eq!(status, 200, "{body}");
    }
    let (status, body) = request(addr, "GET", "/status", None);
    assert_eq!(status, 200);
    let before: StatusBody = serde_json::from_str(&body).expect("status json");
    assert_eq!(before.decisions, 15);
    assert!(before.sprint.active, "test wants a mid-sprint crash");

    // No drain, no warning: SIGKILL.
    child.kill().expect("kill -9");
    child.wait().expect("reap");

    // Second life: same config, same state dir.
    let (mut child, addr) = spawn_sprintd(&config_path, &state_dir);
    let (status, body) = request(addr, "GET", "/status", None);
    assert_eq!(status, 200);
    let after: StatusBody = serde_json::from_str(&body).expect("status json");
    assert_eq!(after.decisions, 15, "decision count survived the crash");
    assert_eq!(
        after.facility, before.facility,
        "plant hot state did not resume bit-identically"
    );
    assert_eq!(after.sprint, before.sprint);

    // The resumed plant keeps serving from where it left off.
    let (status, body) = step(addr, 2.6);
    assert_eq!(status, 200, "{body}");

    let (status, _) = request(addr, "POST", "/shutdown", None);
    assert_eq!(status, 200);
    let exit = child.wait().expect("wait");
    assert!(exit.success(), "clean drain should exit 0, got {exit:?}");

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn sprintd_rejects_bad_usage_and_config() {
    let root = scratch_dir("cli");
    std::fs::create_dir_all(&root).expect("mkdir");

    // Usage error: exit 2.
    let out = Command::new(env!("CARGO_BIN_EXE_sprintd"))
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // Missing config file: exit 4 (I/O).
    let out = Command::new(env!("CARGO_BIN_EXE_sprintd"))
        .arg(root.join("nope.json"))
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(4));

    // Invalid config: exit 3, validation before any socket or state dir.
    let config_path = root.join("bad.json");
    std::fs::write(&config_path, r#"{"pdus":0,"servers_per_pdu":20}"#).expect("write");
    let out = Command::new(env!("CARGO_BIN_EXE_sprintd"))
        .arg(&config_path)
        .arg("--state-dir")
        .arg(root.join("state"))
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(3));
    assert!(
        !root.join("state").exists(),
        "invalid config must not create the state dir"
    );

    std::fs::remove_dir_all(&root).ok();
}
