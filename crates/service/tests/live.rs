//! In-process end-to-end tests for the live service: normal serving,
//! typed errors, backpressure, deadline overruns, stale-feed degradation
//! and recovery, validated reloads, chaos isolation, and
//! checkpoint/restore across a clean restart.

mod common;

use std::time::Duration;

use common::{request, scratch_dir, step, KeepAlive};
use dcs_faults::{ChaosEvent, ChaosKind, ChaosSchedule};
use dcs_service::{
    ErrorBody, HealthBody, ReloadResponse, ServiceConfig, ServiceOptions, SprintService,
    StatusBody, StepResponse, STATUS_SCHEMA,
};

fn small_config() -> ServiceConfig {
    ServiceConfig::for_facility(2, 20)
}

fn spawn(config: ServiceConfig, options: ServiceOptions) -> SprintService {
    SprintService::spawn(config, options, 0).expect("spawn service")
}

fn parse<T: serde::Deserialize>(body: &str) -> T {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad body {body:?}: {e}"))
}

#[test]
fn serves_steps_and_status() {
    let service = spawn(small_config(), ServiceOptions::default());
    let addr = service.addr();

    let (status, body) = step(addr, 0.5);
    assert_eq!(status, 200, "{body}");
    let response: StepResponse = parse(&body);
    assert!(!response.degraded);
    assert_eq!(response.decision_index, Some(0));
    let record = response.record.expect("physics record");
    assert!(!record.sprinting);

    let (status, body) = step(addr, 2.6);
    assert_eq!(status, 200, "{body}");
    let response: StepResponse = parse(&body);
    assert_eq!(response.decision_index, Some(1));
    assert!(response.record.expect("record").sprinting);

    let (status, body) = request(addr, "GET", "/status", None);
    assert_eq!(status, 200, "{body}");
    let status_body: StatusBody = parse(&body);
    assert_eq!(status_body.schema, STATUS_SCHEMA);
    assert_eq!(status_body.mode, "serving");
    assert_eq!(status_body.decisions, 2);
    assert_eq!(status_body.counters.served, 2);
    assert_eq!(status_body.facility.breakers.len(), 3, "dc + 2 pdus");
    assert_eq!(status_body.facility.breakers[0].name, "dc");
    assert!(status_body.facility.breakers[0].no_trip_limit_w > 0.0);
    assert!(status_body.sprint.active);
    assert_eq!(status_body.window.steps, 2);

    let (status, body) = request(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    let health: HealthBody = parse(&body);
    assert_eq!(health.status, "serving");

    service.shutdown();
}

#[test]
fn malformed_requests_get_typed_errors() {
    let service = spawn(small_config(), ServiceOptions::default());
    let addr = service.addr();

    let (status, body) = request(addr, "POST", "/step", Some("not json"));
    assert_eq!(status, 400);
    assert_eq!(parse::<ErrorBody>(&body).error.kind, "bad_request");

    let (status, body) = request(addr, "POST", "/step", Some(r#"{"demand":-1.0}"#));
    assert_eq!(status, 400);
    assert_eq!(parse::<ErrorBody>(&body).error.kind, "bad_request");

    let (status, body) = request(
        addr,
        "POST",
        "/step",
        Some(r#"{"demand":0.5,"dt_secs":0.0}"#),
    );
    assert_eq!(status, 400);
    assert_eq!(parse::<ErrorBody>(&body).error.kind, "bad_request");

    let (status, body) = request(addr, "GET", "/nope", None);
    assert_eq!(status, 404);
    assert_eq!(parse::<ErrorBody>(&body).error.kind, "not_found");

    let (status, body) = request(addr, "DELETE", "/step", None);
    assert_eq!(status, 405);
    assert_eq!(parse::<ErrorBody>(&body).error.kind, "method_not_allowed");

    // None of that disturbed serving.
    let (status, _) = step(addr, 0.5);
    assert_eq!(status, 200);

    service.shutdown();
}

#[test]
fn full_queue_answers_backpressure() {
    let mut config = small_config();
    config.queue_depth = Some(1);
    config.deadline_ms = Some(5_000);
    // Decision 0 stalls in the engine long enough for the queue to fill
    // behind it.
    let options = ServiceOptions {
        state_dir: None,
        chaos: ChaosSchedule::delay_on(0, 0, 700),
    };
    let service = spawn(config, options);
    let addr = service.addr();

    let slow = std::thread::spawn(move || step(addr, 0.5));
    std::thread::sleep(Duration::from_millis(150));
    let queued = std::thread::spawn(move || step(addr, 0.5));
    std::thread::sleep(Duration::from_millis(150));

    // Engine busy with request 1, request 2 holds the single queue slot:
    // this one must be refused immediately, not queued.
    let (status, body) = step(addr, 0.5);
    assert_eq!(status, 429, "{body}");
    let error: ErrorBody = parse(&body);
    assert_eq!(error.error.kind, "backpressure");
    assert_eq!(error.error.queue_depth, Some(1));

    let (status, _) = slow.join().expect("slow request");
    assert_eq!(status, 200);
    let (status, _) = queued.join().expect("queued request");
    assert_eq!(status, 200);

    let (_, body) = request(addr, "GET", "/status", None);
    let status_body: StatusBody = parse(&body);
    assert!(status_body.counters.backpressure >= 1);

    service.shutdown();
}

#[test]
fn deadline_overrun_degrades_then_recovers() {
    let mut config = small_config();
    config.deadline_ms = Some(100);
    config.stale_after_ms = Some(60_000);
    let options = ServiceOptions {
        state_dir: None,
        chaos: ChaosSchedule::delay_on(0, 0, 600),
    };
    let service = spawn(config, options);
    let addr = service.addr();

    // The stalled decision overruns its deadline: typed error, and the
    // service flips to degraded.
    let (status, body) = step(addr, 0.5);
    assert_eq!(status, 503, "{body}");
    let error: ErrorBody = parse(&body);
    assert_eq!(error.error.kind, "deadline_exceeded");
    assert_eq!(error.error.deadline_ms, Some(100));

    // Degraded serving answers 200 with the fail-safe actuation.
    let (status, body) = step(addr, 2.6);
    assert_eq!(status, 200, "{body}");
    let response: StepResponse = parse(&body);
    assert!(response.degraded);
    assert_eq!(response.degraded_reason.as_deref(), Some("engine_overrun"));
    assert!(response.failsafe_cores.unwrap() > 0);
    assert!(response.record.is_none());

    let (_, body) = request(addr, "GET", "/status", None);
    let status_body: StatusBody = parse(&body);
    assert_eq!(status_body.mode, "degraded");
    assert!(status_body.degraded.engine_overrun);

    // Once the stall passes, the watchdog's probe proves the engine
    // healthy and normal serving resumes.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        std::thread::sleep(Duration::from_millis(50));
        let (status, body) = step(addr, 0.5);
        assert_eq!(status, 200, "{body}");
        let response: StepResponse = parse(&body);
        if !response.degraded {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "service never recovered from the overrun"
        );
    }

    service.shutdown();
}

#[test]
fn stale_feed_degrades_and_traffic_recovers() {
    let mut config = small_config();
    config.stale_after_ms = Some(300);
    let service = spawn(config, ServiceOptions::default());
    let addr = service.addr();

    let (status, _) = step(addr, 0.5);
    assert_eq!(status, 200);

    // Go silent past the staleness window: the watchdog degrades.
    std::thread::sleep(Duration::from_millis(700));
    let (_, body) = request(addr, "GET", "/status", None);
    let status_body: StatusBody = parse(&body);
    assert_eq!(status_body.mode, "degraded", "{body}");
    assert!(status_body.degraded.stale_feed);

    // Healthz still answers 200 while degraded (alive, just fail-safe).
    let (status, body) = request(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(parse::<HealthBody>(&body).status, "degraded");

    // Traffic resuming: the first request(s) are fail-safe, then the
    // watchdog restores serving.
    let (status, body) = step(addr, 0.5);
    assert_eq!(status, 200);
    let response: StepResponse = parse(&body);
    assert!(response.degraded);
    assert_eq!(response.degraded_reason.as_deref(), Some("stale_feed"));

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        std::thread::sleep(Duration::from_millis(50));
        let (status, body) = step(addr, 0.5);
        assert_eq!(status, 200, "{body}");
        if !parse::<StepResponse>(&body).degraded {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "service never recovered from the stale feed"
        );
    }

    service.shutdown();
}

#[test]
fn reload_validates_swaps_and_rolls_back() {
    let service = spawn(small_config(), ServiceOptions::default());
    let addr = service.addr();
    let (status, _) = step(addr, 0.5);
    assert_eq!(status, 200);

    // Invalid reload: typed rejection, running config untouched.
    let (status, body) = request(
        addr,
        "POST",
        "/reload",
        Some(r#"{"pdus":2,"servers_per_pdu":20,"queue_depth":0}"#),
    );
    assert_eq!(status, 400, "{body}");
    assert_eq!(parse::<ErrorBody>(&body).error.kind, "config");
    let (_, body) = request(addr, "GET", "/status", None);
    let status_body: StatusBody = parse(&body);
    assert_eq!(status_body.config_generation, 1);
    assert!(status_body
        .last_reload_error
        .as_deref()
        .unwrap()
        .contains("queue_depth"));
    assert_eq!(status_body.counters.reloads_rejected, 1);
    let (status, _) = step(addr, 0.5);
    assert_eq!(status, 200);

    // Same-plant reload: service knobs hot-swap, plant state survives.
    let (status, body) = request(
        addr,
        "POST",
        "/reload",
        Some(r#"{"pdus":2,"servers_per_pdu":20,"deadline_ms":400}"#),
    );
    assert_eq!(status, 200, "{body}");
    let reload: ReloadResponse = parse(&body);
    assert!(!reload.rebuilt);
    assert_eq!(reload.config_generation, 2);
    let (_, body) = request(addr, "GET", "/status", None);
    let status_body: StatusBody = parse(&body);
    assert_eq!(status_body.decisions, 2, "plant state survived the swap");
    assert!(status_body.last_reload_error.is_none());

    // Plant-changing reload: rebuilt from scratch on the new geometry.
    let (status, body) = request(
        addr,
        "POST",
        "/reload",
        Some(r#"{"pdus":3,"servers_per_pdu":20}"#),
    );
    assert_eq!(status, 200, "{body}");
    assert!(parse::<ReloadResponse>(&body).rebuilt);
    let (_, body) = request(addr, "GET", "/status", None);
    let status_body: StatusBody = parse(&body);
    assert_eq!(status_body.decisions, 0);
    assert_eq!(status_body.facility.breakers.len(), 4, "dc + 3 pdus");
    let (status, _) = step(addr, 0.5);
    assert_eq!(status, 200);

    service.shutdown();
}

#[test]
fn chaos_panic_is_isolated_to_one_request() {
    let options = ServiceOptions {
        state_dir: None,
        chaos: ChaosSchedule::new(vec![ChaosEvent {
            item: 0,
            attempt: 0,
            kind: ChaosKind::Panic,
        }]),
    };
    let service = spawn(small_config(), options);
    let addr = service.addr();

    let (status, body) = step(addr, 0.5);
    assert_eq!(status, 503, "{body}");
    assert_eq!(parse::<ErrorBody>(&body).error.kind, "decision_failed");

    // The panic was contained: the engine keeps serving.
    let (status, body) = step(addr, 0.5);
    assert_eq!(status, 200, "{body}");
    assert!(!parse::<StepResponse>(&body).degraded);

    let (status, body) = request(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(parse::<HealthBody>(&body).status, "serving");

    service.shutdown();
}

#[test]
fn clean_restart_restores_checkpointed_state() {
    let dir = scratch_dir("restart");
    let mut config = small_config();
    config.checkpoint_every = Some(1);

    let options = ServiceOptions {
        state_dir: Some(dir.clone()),
        chaos: ChaosSchedule::none(),
    };
    let service = spawn(config.clone(), options);
    let addr = service.addr();
    for i in 0..12 {
        let demand = if (4..10).contains(&i) { 2.6 } else { 0.6 };
        let (status, body) = step(addr, demand);
        assert_eq!(status, 200, "{body}");
    }
    let (_, body) = request(addr, "GET", "/status", None);
    let before: StatusBody = parse(&body);
    assert_eq!(before.decisions, 12);
    service.shutdown();

    let options = ServiceOptions {
        state_dir: Some(dir.clone()),
        chaos: ChaosSchedule::none(),
    };
    let service = spawn(config, options);
    let (_, body) = request(service.addr(), "GET", "/status", None);
    let after: StatusBody = parse(&body);
    assert_eq!(after.decisions, 12);
    assert_eq!(
        after.facility, before.facility,
        "plant hot state did not restore bit-identically"
    );
    assert_eq!(after.sprint, before.sprint);
    service.shutdown();

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_endpoint_drains() {
    // Park decision 1 in the engine so the drain window stays open while
    // the test probes draining behavior: the coordinator must wait for
    // the in-flight request, and new connections must get typed refusals
    // in the meantime.
    let mut config = small_config();
    config.deadline_ms = Some(5_000);
    let options = ServiceOptions {
        state_dir: None,
        chaos: ChaosSchedule::delay_on(1, 0, 900),
    };
    let service = spawn(config, options);
    let addr = service.addr();
    let (status, _) = step(addr, 0.5);
    assert_eq!(status, 200);

    let slow = std::thread::spawn(move || step(addr, 0.5));
    std::thread::sleep(Duration::from_millis(200));

    let (status, body) = request(addr, "POST", "/shutdown", None);
    assert_eq!(status, 200, "{body}");

    // While draining, new connections are refused with the typed status
    // straight from the acceptor.
    let (status, body) = step(addr, 0.5);
    assert_eq!(status, 503, "{body}");
    assert_eq!(parse::<ErrorBody>(&body).error.kind, "draining");

    // The in-flight decision still completes under the drain deadline.
    let (status, body) = slow.join().expect("in-flight request");
    assert_eq!(status, 200, "{body}");

    service.join();
}

#[test]
fn connection_limit_rejects_typed() {
    // 2 workers + a 1-deep pending queue = 3 concurrent connections;
    // the 4th gets an immediate typed 503, never a silent drop.
    let mut config = small_config();
    config.workers = Some(2);
    config.accept_queue = Some(1);
    let service = spawn(config, ServiceOptions::default());
    let addr = service.addr();

    // Park both workers on live keep-alive connections, one at a time —
    // the exchange proves the connection left the pending queue for a
    // worker before the next one arrives.
    let mut held_a = KeepAlive::connect(addr);
    assert_eq!(held_a.get("/healthz").0, 200);
    let mut held_b = KeepAlive::connect(addr);
    assert_eq!(held_b.get("/healthz").0, 200);

    // Fills the single pending-queue slot (accepted, not yet served).
    let queued = KeepAlive::connect(addr);
    std::thread::sleep(Duration::from_millis(100));

    // Over capacity: typed rejection straight from the acceptor.
    let (status, body) = request(addr, "GET", "/healthz", None);
    assert_eq!(status, 503, "{body}");
    assert_eq!(parse::<ErrorBody>(&body).error.kind, "overloaded");

    // The reject is counted, not silent.
    let (status, body) = held_a.get("/status");
    assert_eq!(status, 200, "{body}");
    let status_body: StatusBody = parse(&body);
    assert!(status_body.counters.connections_rejected >= 1);
    assert!(status_body.counters.connections_accepted >= 3);

    // Freeing a worker unblocks the queued connection: it was never
    // dropped, just waiting.
    drop(held_a);
    drop(held_b);
    let mut queued = queued;
    let (status, _) = queued.get("/healthz");
    assert_eq!(status, 200);

    service.shutdown();
}
