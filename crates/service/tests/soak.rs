//! Network-chaos soak: a [`RetryClient`] drives 1,000 decisions through
//! the seeded fault-injecting [`ChaosProxy`] — resets, truncations,
//! stalls, trickled bytes — and the suite asserts the three properties
//! the hardened front line promises:
//!
//! 1. **Zero hangs.** Every call is deadline-bounded; the whole soak
//!    finishes under a wall-clock cap.
//! 2. **Typed errors only.** Every failure the client surfaces is a
//!    typed transport/HTTP outcome, never an unparseable 5xx.
//! 3. **Exactly-once control.** Post-soak hot state is bit-identical to
//!    a clean run of the same demand stream: ambiguous retries were
//!    replayed, never re-applied.

mod common;

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use common::{request, step, KeepAlive};
use dcs_service::{
    ChaosProxy, ClientError, ErrorBody, RetryClient, RetryConfig, ServiceConfig, ServiceOptions,
    SprintService, StatusBody, StepResponse,
};

const DECISIONS: u64 = 1_000;
const SOAK_SEED: u64 = 42;
/// Per-connection fault probability, in per-mille.
const FAULT_PER_MILLE: u32 = 300;

fn parse<T: serde::Deserialize>(body: &str) -> T {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad body {body:?}: {e}"))
}

fn soak_config() -> ServiceConfig {
    let mut config = ServiceConfig::for_facility(2, 20);
    // Generous decision deadline: chaos stalls (≤500ms) must show up as
    // slow requests, not spurious engine overruns.
    config.deadline_ms = Some(5_000);
    config
}

/// The deterministic demand stream both runs replay: mostly nominal
/// load with periodic sprint bursts.
fn demand_at(i: u64) -> f64 {
    if (i / 25) % 5 == 4 {
        2.6
    } else {
        0.6 + 0.3 * ((i % 7) as f64) / 7.0
    }
}

#[test]
fn chaos_soak_is_bounded_typed_and_bit_identical() {
    // --- Chaos run: client → proxy → service ---------------------------
    let service = SprintService::spawn(soak_config(), ServiceOptions::default(), 0).expect("spawn");
    let proxy = ChaosProxy::spawn(service.addr(), SOAK_SEED, FAULT_PER_MILLE).expect("proxy");
    let mut client = RetryClient::with_config(
        proxy.addr(),
        RetryConfig {
            deadline: Duration::from_secs(2),
            // Rotate so fresh per-connection fault plans keep arriving
            // instead of the soak settling on one lucky clean socket.
            rotate_after: 8,
            ..RetryConfig::default()
        },
    );

    let started = Instant::now();
    for i in 0..DECISIONS {
        let demand = demand_at(i);
        let mut tries = 0_u32;
        loop {
            match client.step(demand) {
                Ok(response) => {
                    assert!(!response.degraded, "decision {i} served degraded");
                    // Exactly-once: every intended decision lands on its
                    // own index, replayed or fresh, never skipped or
                    // double-applied.
                    assert_eq!(response.decision_index, Some(i), "decision {i}");
                    break;
                }
                Err(ClientError::BreakerOpen { retry_in }) => {
                    std::thread::sleep(retry_in.min(Duration::from_millis(200)));
                }
                Err(ClientError::Exhausted { .. }) => {
                    // Transport-level chaos outlasted one retry budget;
                    // the expect_index makes re-running the step safe.
                }
                Err(ClientError::Rejected {
                    status,
                    ref kind,
                    ref message,
                }) => {
                    // A proxy-mangled request may surface as a typed 4xx;
                    // anything untyped (or an unexpected 5xx) fails the
                    // soak.
                    assert!(
                        matches!(kind.as_str(), "bad_request" | "request_timeout"),
                        "decision {i}: untyped or unexpected error \
                         {status} {kind}: {message}"
                    );
                }
            }
            tries += 1;
            assert!(tries < 100, "decision {i} is not making progress");
            assert!(
                started.elapsed() < Duration::from_secs(120),
                "soak wall-clock bound exceeded at decision {i}"
            );
        }
    }
    let soak_elapsed = started.elapsed();
    assert!(
        soak_elapsed < Duration::from_secs(120),
        "soak took {soak_elapsed:?}"
    );

    let stats = client.stats();
    let proxy_stats = proxy.stats();
    let faults = proxy_stats.resets.load(Ordering::SeqCst)
        + proxy_stats.truncations.load(Ordering::SeqCst)
        + proxy_stats.stalls.load(Ordering::SeqCst)
        + proxy_stats.trickles.load(Ordering::SeqCst);
    assert!(
        faults > 0,
        "the soak injected no faults — seed/rate are not exercising chaos"
    );
    assert!(
        stats.retries > 0,
        "chaos never forced a retry — the soak is not adversarial"
    );

    let chaos_status = client.status().expect("post-soak status");
    assert_eq!(chaos_status.decisions, DECISIONS);
    proxy.stop();
    service.shutdown();

    // --- Clean run: same demand stream, no proxy ----------------------
    let service = SprintService::spawn(soak_config(), ServiceOptions::default(), 0).expect("spawn");
    let addr = service.addr();
    for i in 0..DECISIONS {
        let (status, body) = step(addr, demand_at(i));
        assert_eq!(status, 200, "clean decision {i}: {body}");
    }
    let (status, body) = request(addr, "GET", "/status", None);
    assert_eq!(status, 200);
    let clean_status: StatusBody = parse(&body);
    service.shutdown();

    // --- Bit-identity: chaos never perturbed the plant -----------------
    assert_eq!(clean_status.decisions, chaos_status.decisions);
    assert_eq!(
        clean_status.facility, chaos_status.facility,
        "post-soak hot state diverged from the clean run"
    );
    assert_eq!(clean_status.sprint, chaos_status.sprint);
    assert_eq!(clean_status.window, chaos_status.window);
}

#[test]
fn ambiguous_retry_never_double_advances() {
    let service = SprintService::spawn(soak_config(), ServiceOptions::default(), 0).expect("spawn");
    let addr = service.addr();
    let mut conn = KeepAlive::connect(addr);

    let (status, body) = conn.send("POST", "/step", Some(r#"{"demand":0.7,"expect_index":0}"#));
    assert_eq!(status, 200, "{body}");
    let first: StepResponse = parse(&body);
    assert_eq!(first.decision_index, Some(0));
    assert!(!first.replayed);

    let (status, body) = conn.send("POST", "/step", Some(r#"{"demand":2.6,"expect_index":1}"#));
    assert_eq!(status, 200, "{body}");
    let applied: StepResponse = parse(&body);
    assert_eq!(applied.decision_index, Some(1));
    assert!(!applied.replayed);

    // The ambiguous case: the identical request again, as a client whose
    // response was lost would send it. Served from the replay cache —
    // same outcome, plant untouched.
    let (status, body) = conn.send("POST", "/step", Some(r#"{"demand":2.6,"expect_index":1}"#));
    assert_eq!(status, 200, "{body}");
    let replayed: StepResponse = parse(&body);
    assert_eq!(replayed.decision_index, Some(1));
    assert!(replayed.replayed);
    assert_eq!(
        format!("{:?}", replayed.record),
        format!("{:?}", applied.record),
        "replay must reproduce the original outcome"
    );

    let (status, body) = conn.get("/status");
    assert_eq!(status, 200);
    let status_body: StatusBody = parse(&body);
    assert_eq!(
        status_body.decisions, 2,
        "the retry must not advance the plant"
    );
    assert!(status_body.counters.replays_served >= 1);

    // A *different* request claiming an already-taken index is a
    // conflict, not a silent overwrite.
    let (status, body) = conn.send("POST", "/step", Some(r#"{"demand":1.1,"expect_index":1}"#));
    assert_eq!(status, 409, "{body}");
    assert_eq!(parse::<ErrorBody>(&body).error.kind, "index_conflict");

    // Claiming a future index is equally conflicted.
    let (status, body) = conn.send("POST", "/step", Some(r#"{"demand":0.7,"expect_index":9}"#));
    assert_eq!(status, 409, "{body}");
    assert_eq!(parse::<ErrorBody>(&body).error.kind, "index_conflict");

    // Untagged steps keep working (opt-in protocol).
    let (status, body) = conn.send("POST", "/step", Some(r#"{"demand":0.7}"#));
    assert_eq!(status, 200, "{body}");
    assert_eq!(parse::<StepResponse>(&body).decision_index, Some(2));

    service.shutdown();
}

#[test]
fn evicted_replay_entries_answer_replay_gap() {
    let mut config = soak_config();
    config.replay_cache = Some(2);
    let service = SprintService::spawn(config, ServiceOptions::default(), 0).expect("spawn");
    let addr = service.addr();
    let mut conn = KeepAlive::connect(addr);

    for i in 0..5 {
        let (status, body) = conn.send(
            "POST",
            "/step",
            Some(&format!(r#"{{"demand":0.7,"expect_index":{i}}}"#)),
        );
        assert_eq!(status, 200, "{body}");
    }

    // Indexes 3 and 4 are still cached; 1 fell off the 2-deep cache, so
    // its outcome is honestly unknowable: a typed replay_gap, never a
    // guess.
    let (status, body) = conn.send("POST", "/step", Some(r#"{"demand":0.7,"expect_index":4}"#));
    assert_eq!(status, 200, "{body}");
    assert!(parse::<StepResponse>(&body).replayed);

    let (status, body) = conn.send("POST", "/step", Some(r#"{"demand":0.7,"expect_index":1}"#));
    assert_eq!(status, 409, "{body}");
    assert_eq!(parse::<ErrorBody>(&body).error.kind, "replay_gap");

    service.shutdown();
}

#[test]
fn fault_plans_are_seeded_and_deterministic() {
    for conn_index in 0..64_u64 {
        assert_eq!(
            ChaosProxy::plan_for(SOAK_SEED, conn_index, FAULT_PER_MILLE),
            ChaosProxy::plan_for(SOAK_SEED, conn_index, FAULT_PER_MILLE),
        );
    }
    // Different seeds genuinely reshuffle the plans.
    let differs =
        (0..64_u64).any(|i| ChaosProxy::plan_for(1, i, 1000) != ChaosProxy::plan_for(2, i, 1000));
    assert!(differs, "seeds do not influence fault plans");
    // Rate zero means a clean proxy, whatever the seed.
    for conn_index in 0..64_u64 {
        let plan = ChaosProxy::plan_for(SOAK_SEED, conn_index, 0);
        assert_eq!(plan.kind, dcs_service::FaultKind::None);
    }
}
