//! Shared helpers for the service integration tests: a minimal HTTP/1.1
//! client over `std::net` and temp-dir plumbing.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A unique scratch directory per call; callers clean up on success.
/// Not every test binary uses it.
#[allow(dead_code)]
pub fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("dcs-service-{}-{}-{}", tag, std::process::id(), n))
}

/// One `connection: close` exchange; returns `(status, body)`.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let body = body.unwrap_or("");
    let message = format!(
        "{method} {path} HTTP/1.1\r\nhost: localhost\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(message.as_bytes()).expect("write request");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut content_length = 0_usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        let trimmed = header.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length");
            }
        }
    }
    let mut buf = vec![0_u8; content_length];
    reader.read_exact(&mut buf).expect("body");
    (status, String::from_utf8(buf).expect("utf8 body"))
}

/// `POST /step` with the given demand; returns `(status, body)`.
pub fn step(addr: SocketAddr, demand: f64) -> (u16, String) {
    request(
        addr,
        "POST",
        "/step",
        Some(&format!(r#"{{"demand":{demand:?}}}"#)),
    )
}

/// A persistent keep-alive connection. Not every test binary uses it.
#[allow(dead_code)]
pub struct KeepAlive {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

#[allow(dead_code)]
impl KeepAlive {
    pub fn connect(addr: SocketAddr) -> KeepAlive {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        KeepAlive {
            writer: stream,
            reader,
        }
    }

    /// One keep-alive exchange; returns `(status, body)`.
    pub fn send(&mut self, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
        let body = body.unwrap_or("");
        let message = format!(
            "{method} {path} HTTP/1.1\r\nhost: localhost\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer
            .write_all(message.as_bytes())
            .expect("write request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut content_length = 0_usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).expect("header");
            let trimmed = header.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("content-length");
                }
            }
        }
        let mut buf = vec![0_u8; content_length];
        self.reader.read_exact(&mut buf).expect("body");
        (status, String::from_utf8(buf).expect("utf8 body"))
    }

    pub fn get(&mut self, path: &str) -> (u16, String) {
        self.send("GET", path, None)
    }
}
