//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored serde's owned [`Value`] model. Two
//! deliberate departures from upstream, both in the service of exact
//! state round-trips:
//!
//! * floats are written with Rust's `Display`, which emits the shortest
//!   decimal that parses back to the identical bits (so the upstream
//!   `float_roundtrip` behavior is simply the default);
//! * non-finite floats serialize as bare `Infinity` / `-Infinity` / `NaN`
//!   tokens rather than erroring — Python's `json` module (used by the CI
//!   validators) reads the same spelling. `-0.0` also survives: `-0` is
//!   parsed back as a float so the sign bit is preserved.

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Result alias matching the upstream signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_sep(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_sep(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_nan() {
        out.push_str("NaN");
    } else if f == f64::INFINITY {
        out.push_str("Infinity");
    } else if f == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        // Debug formatting is the shortest round-tripping decimal and,
        // like upstream serde_json, keeps a `.0` on integral values
        // (`13750.0`, not `13750`) and the sign on `-0.0`.
        out.push_str(&format!("{f:?}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::F64(f64::NAN)),
            Some(b'I') if self.eat_keyword("Infinity") => Ok(Value::F64(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Value::F64(f64::NEG_INFINITY))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                // `-0` keeps its sign bit as a float so negative zero
                // survives a round trip.
                if digits.chars().all(|c| c == '0') {
                    return Ok(Value::F64(-0.0));
                }
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::I64(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        let text = {
            let mut out = String::new();
            write_value(&mut out, v, None, 0);
            out
        };
        parse_value(&text).unwrap()
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::U64(42),
            Value::I64(-7),
            Value::F64(0.1),
            Value::F64(f64::INFINITY),
            Value::F64(f64::NEG_INFINITY),
            Value::Str("he\"llo\nworld".into()),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn negative_zero_keeps_sign() {
        match round_trip(&Value::F64(-0.0)) {
            Value::F64(f) => assert!(f == 0.0 && f.is_sign_negative()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn nan_round_trips_as_nan() {
        match round_trip(&Value::F64(f64::NAN)) {
            Value::F64(f) => assert!(f.is_nan()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn float_bits_survive() {
        for bits in [
            0x3fb999999999999au64,
            0x400921fb54442d18,
            0x7fefffffffffffff,
        ] {
            let f = f64::from_bits(bits);
            match round_trip(&Value::F64(f)) {
                Value::F64(g) => assert_eq!(g.to_bits(), bits),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn nested_structures() {
        let v = Value::Object(vec![
            (
                "list".into(),
                Value::Array(vec![Value::U64(1), Value::Null]),
            ),
            (
                "nested".into(),
                Value::Object(vec![("k".into(), Value::Str("v".into()))]),
            ),
        ]);
        assert_eq!(round_trip(&v), v);
        let pretty = {
            let mut out = String::new();
            write_value(&mut out, &v, Some(2), 0);
            out
        };
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn typed_round_trip() {
        let text = to_string(&vec![1.5f64, 2.0, -3.25]).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, vec![1.5, 2.0, -3.25]);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<f64>("1.0 x").is_err());
    }
}
