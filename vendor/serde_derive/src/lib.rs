//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored serde's owned-value `Serialize` /
//! `Deserialize` traits. Built directly on `proc_macro` token trees — no
//! `syn`/`quote` — so it supports exactly the shapes this workspace uses:
//!
//! * named-field structs (with `#[serde(default)]` and `#[serde(skip)]`
//!   fields — skipped fields are omitted on the wire and restored with
//!   `Default::default()`);
//! * `#[serde(transparent)]` newtype structs;
//! * plain enums, externally tagged (unit variant ⇄ string, data variant
//!   ⇄ single-key object);
//! * internally tagged enums via `#[serde(tag = "...")]`, optionally with
//!   `#[serde(rename_all = "snake_case")]`.
//!
//! Field *types* are never parsed: generated code routes every field
//! through generic helpers (`serde::de::field`, `Serialize::to_value`)
//! and lets inference do the rest. Generic containers are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

#[derive(Default)]
struct SerdeAttrs {
    transparent: bool,
    default: bool,
    skip: bool,
    tag: Option<String>,
    rename_all: Option<String>,
}

struct Field {
    name: Option<String>,
    attrs: SerdeAttrs,
}

struct Variant {
    name: String,
    fields: Vec<Field>,
    named: bool,
}

enum Shape {
    Struct { fields: Vec<Field>, named: bool },
    Enum { variants: Vec<Variant> },
}

struct Item {
    name: String,
    attrs: SerdeAttrs,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    let mut attrs = SerdeAttrs::default();
    let mut name = String::new();
    let mut is_enum = false;

    // Container attributes, visibility, and the struct/enum keyword.
    while let Some(tok) = tokens.next() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    merge_serde_attr(&mut attrs, &g.stream());
                }
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                match word.as_str() {
                    "pub" => {
                        // Skip an optional restriction like `pub(crate)`.
                        if let Some(TokenTree::Group(g)) = tokens.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                tokens.next();
                            }
                        }
                    }
                    "struct" | "enum" => {
                        is_enum = word == "enum";
                        if let Some(TokenTree::Ident(n)) = tokens.next() {
                            name = n.to_string();
                        }
                        break;
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    assert!(
        !name.is_empty(),
        "serde_derive: could not find container name"
    );

    // Reject generics: the next token after the name must open the body.
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        assert!(
            p.as_char() != '<',
            "serde_derive stand-in does not support generic containers ({name})"
        );
    }

    let body = tokens.find_map(|tok| match tok {
        TokenTree::Group(g) => Some(g),
        _ => None,
    });

    let shape = if is_enum {
        let body = body.expect("serde_derive: enum without a body");
        Shape::Enum {
            variants: parse_variants(body.stream()),
        }
    } else {
        match body {
            Some(g) if g.delimiter() == Delimiter::Brace => Shape::Struct {
                fields: parse_named_fields(g.stream()),
                named: true,
            },
            Some(g) => Shape::Struct {
                fields: parse_tuple_fields(g.stream()),
                named: false,
            },
            // `struct Unit;`
            None => Shape::Struct {
                fields: Vec::new(),
                named: false,
            },
        }
    };

    Item { name, attrs, shape }
}

/// Folds one outer attribute's bracket-group stream into `attrs` if it is
/// a `serde(...)` attribute; ignores everything else (doc comments, other
/// derives' helpers).
fn merge_serde_attr(attrs: &mut SerdeAttrs, bracket: &TokenStream) {
    let mut it = bracket.clone().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = it.next() else {
        return;
    };

    let mut toks = args.stream().into_iter().peekable();
    while let Some(tok) = toks.next() {
        let TokenTree::Ident(key) = tok else { continue };
        let key = key.to_string();
        let value = match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                toks.next();
                match toks.next() {
                    Some(TokenTree::Literal(lit)) => {
                        Some(lit.to_string().trim_matches('"').to_string())
                    }
                    _ => None,
                }
            }
            _ => None,
        };
        match key.as_str() {
            "transparent" => attrs.transparent = true,
            "default" => attrs.default = true,
            "skip" => attrs.skip = true,
            "tag" => attrs.tag = value,
            "rename_all" => attrs.rename_all = value,
            other => panic!("serde_derive stand-in: unsupported serde attribute `{other}`"),
        }
    }
}

/// Collects leading `#[...]` attributes at the current stream position.
fn take_attrs(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() != '#' {
            break;
        }
        toks.next();
        if let Some(TokenTree::Group(g)) = toks.next() {
            merge_serde_attr(&mut attrs, &g.stream());
        }
    }
    attrs
}

fn skip_visibility(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = toks.peek() {
        if id.to_string() == "pub" {
            toks.next();
            if let Some(TokenTree::Group(g)) = toks.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    toks.next();
                }
            }
        }
    }
}

/// Skips a type (or any token run) up to a top-level comma, tracking angle
/// brackets so `BTreeMap<String, u64>` stays one field.
fn skip_to_comma(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle = 0i32;
    while let Some(tok) = toks.peek() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    toks.next();
                    return;
                }
                _ => {}
            }
        }
        toks.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = take_attrs(&mut toks);
        skip_visibility(&mut toks);
        match toks.next() {
            Some(TokenTree::Ident(id)) => {
                fields.push(Field {
                    name: Some(id.to_string()),
                    attrs,
                });
                // Skip `: Type,`.
                skip_to_comma(&mut toks);
            }
            Some(_) => continue,
            None => break,
        }
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = take_attrs(&mut toks);
        skip_visibility(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        fields.push(Field { name: None, attrs });
        skip_to_comma(&mut toks);
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let _attrs = take_attrs(&mut toks);
        let Some(TokenTree::Ident(id)) = toks.next() else {
            break;
        };
        let name = id.to_string();
        let (fields, named) = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                toks.next();
                (f, true)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = parse_tuple_fields(g.stream());
                toks.next();
                (f, false)
            }
            _ => (Vec::new(), false),
        };
        variants.push(Variant {
            name,
            fields,
            named,
        });
        // Skip a discriminant (unused here) and the trailing comma.
        skip_to_comma(&mut toks);
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn rename_variant(name: &str, rename_all: Option<&str>) -> String {
    match rename_all {
        Some("snake_case") => {
            let mut out = String::new();
            for (i, c) in name.chars().enumerate() {
                if c.is_ascii_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.push(c.to_ascii_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        Some("lowercase") => name.to_ascii_lowercase(),
        Some(other) => panic!("serde_derive stand-in: unsupported rename_all `{other}`"),
        None => name.to_string(),
    }
}

fn tuple_binders(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("__f{i}")).collect()
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct { fields, named } => gen_struct_ser(item, fields, *named),
        Shape::Enum { variants } => gen_enum_ser(item, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_struct_ser(item: &Item, fields: &[Field], named: bool) -> String {
    if item.attrs.transparent {
        assert!(fields.len() == 1, "transparent requires exactly one field");
        let access = match &fields[0].name {
            Some(n) => format!("self.{n}"),
            None => "self.0".to_string(),
        };
        return format!("serde::Serialize::to_value(&{access})");
    }
    if fields.is_empty() {
        // Unit structs (and empty braced structs) serialize as null,
        // matching upstream's unit-struct encoding.
        return "serde::Value::Null".to_string();
    }
    if named {
        let mut out =
            String::from("let mut __entries: Vec<(String, serde::Value)> = Vec::new();\n");
        for f in fields {
            if f.attrs.skip {
                continue;
            }
            let n = f.name.as_ref().unwrap();
            out.push_str(&format!(
                "__entries.push((\"{n}\".to_string(), serde::Serialize::to_value(&self.{n})));\n"
            ));
        }
        out.push_str("serde::Value::Object(__entries)");
        out
    } else if fields.len() == 1 {
        "serde::Serialize::to_value(&self.0)".to_string()
    } else {
        let items: Vec<String> = (0..fields.len())
            .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
            .collect();
        format!("serde::Value::Array(vec![{}])", items.join(", "))
    }
}

fn gen_enum_ser(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    let rename = item.attrs.rename_all.as_deref();
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        let wire = rename_variant(vname, rename);
        let arm = if let Some(tag) = &item.attrs.tag {
            // Internally tagged: {"<tag>": "<wire>", ...fields}.
            if v.fields.is_empty() {
                format!(
                    "{name}::{vname} => serde::Value::Object(vec![(\"{tag}\".to_string(), \
                     serde::Value::Str(\"{wire}\".to_string()))]),\n"
                )
            } else {
                assert!(
                    v.named,
                    "internally tagged enums require named-field variants"
                );
                let binds: Vec<&String> =
                    v.fields.iter().map(|f| f.name.as_ref().unwrap()).collect();
                let pat = binds
                    .iter()
                    .map(|b| b.as_str())
                    .collect::<Vec<_>>()
                    .join(", ");
                let mut body = format!(
                    "let mut __entries: Vec<(String, serde::Value)> = \
                     vec![(\"{tag}\".to_string(), serde::Value::Str(\"{wire}\".to_string()))];\n"
                );
                for b in &binds {
                    body.push_str(&format!(
                        "__entries.push((\"{b}\".to_string(), serde::Serialize::to_value({b})));\n"
                    ));
                }
                body.push_str("serde::Value::Object(__entries)");
                format!("{name}::{vname} {{ {pat} }} => {{\n{body}\n}}\n")
            }
        } else {
            // Externally tagged.
            if v.fields.is_empty() {
                format!("{name}::{vname} => serde::Value::Str(\"{wire}\".to_string()),\n")
            } else if v.named {
                let binds: Vec<&String> =
                    v.fields.iter().map(|f| f.name.as_ref().unwrap()).collect();
                let pat = binds
                    .iter()
                    .map(|b| b.as_str())
                    .collect::<Vec<_>>()
                    .join(", ");
                let mut body =
                    String::from("let mut __entries: Vec<(String, serde::Value)> = Vec::new();\n");
                for b in &binds {
                    body.push_str(&format!(
                        "__entries.push((\"{b}\".to_string(), serde::Serialize::to_value({b})));\n"
                    ));
                }
                body.push_str(&format!(
                    "serde::Value::Object(vec![(\"{wire}\".to_string(), \
                     serde::Value::Object(__entries))])"
                ));
                format!("{name}::{vname} {{ {pat} }} => {{\n{body}\n}}\n")
            } else if v.fields.len() == 1 {
                format!(
                    "{name}::{vname}(__f0) => serde::Value::Object(vec![(\"{wire}\".to_string(), \
                     serde::Serialize::to_value(__f0))]),\n"
                )
            } else {
                let binds = tuple_binders(v.fields.len());
                let pat = binds.join(", ");
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("serde::Serialize::to_value({b})"))
                    .collect();
                format!(
                    "{name}::{vname}({pat}) => serde::Value::Object(vec![(\"{wire}\".to_string(), \
                     serde::Value::Array(vec![{}]))]),\n",
                    items.join(", ")
                )
            }
        };
        arms.push_str(&arm);
    }
    format!("match self {{\n{arms}}}")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct { fields, named } => gen_struct_de(item, fields, *named),
        Shape::Enum { variants } => gen_enum_de(item, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(__value: &serde::Value) -> Result<{name}, serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn gen_struct_de(item: &Item, fields: &[Field], named: bool) -> String {
    let name = &item.name;
    if item.attrs.transparent {
        assert!(fields.len() == 1, "transparent requires exactly one field");
        return match &fields[0].name {
            Some(n) => format!("Ok({name} {{ {n}: serde::Deserialize::from_value(__value)? }})"),
            None => format!("Ok({name}(serde::Deserialize::from_value(__value)?))"),
        };
    }
    if fields.is_empty() {
        let ctor = if named {
            format!("{name} {{}}")
        } else {
            name.to_string()
        };
        return format!("let _ = __value;\nOk({ctor})");
    }
    if named {
        let mut out = format!(
            "let __entries = __value.as_object().ok_or_else(|| \
             serde::DeError::expected(\"object\", \"{name}\"))?;\n\
             Ok({name} {{\n"
        );
        for f in fields {
            let n = f.name.as_ref().unwrap();
            if f.attrs.skip {
                out.push_str(&format!("{n}: std::default::Default::default(),\n"));
                continue;
            }
            let helper = if f.attrs.default {
                "field_or_default"
            } else {
                "field"
            };
            out.push_str(&format!(
                "{n}: serde::de::{helper}(__entries, \"{n}\", \"{name}\")?,\n"
            ));
        }
        out.push_str("})");
        out
    } else if fields.len() == 1 {
        format!("Ok({name}(serde::Deserialize::from_value(__value)?))")
    } else {
        let mut out = format!(
            "let __items = __value.as_array().ok_or_else(|| \
             serde::DeError::expected(\"array\", \"{name}\"))?;\n\
             if __items.len() != {len} {{\n\
                 return Err(serde::DeError::expected(\"array of {len}\", \"{name}\"));\n\
             }}\n\
             Ok({name}(\n",
            len = fields.len()
        );
        for i in 0..fields.len() {
            out.push_str(&format!(
                "serde::Deserialize::from_value(&__items[{i}])?,\n"
            ));
        }
        out.push_str("))");
        out
    }
}

fn gen_enum_de(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    let rename = item.attrs.rename_all.as_deref();

    if let Some(tag) = &item.attrs.tag {
        // Internally tagged.
        let mut arms = String::new();
        for v in variants {
            let vname = &v.name;
            let wire = rename_variant(vname, rename);
            if v.fields.is_empty() {
                arms.push_str(&format!("\"{wire}\" => Ok({name}::{vname}),\n"));
            } else {
                let mut body = format!("Ok({name}::{vname} {{\n");
                for f in &v.fields {
                    let n = f.name.as_ref().unwrap();
                    let helper = if f.attrs.default {
                        "field_or_default"
                    } else {
                        "field"
                    };
                    body.push_str(&format!(
                        "{n}: serde::de::{helper}(__entries, \"{n}\", \"{name}::{vname}\")?,\n"
                    ));
                }
                body.push_str("})");
                arms.push_str(&format!("\"{wire}\" => {{\n{body}\n}}\n"));
            }
        }
        return format!(
            "let __entries = __value.as_object().ok_or_else(|| \
             serde::DeError::expected(\"object\", \"{name}\"))?;\n\
             let __tag: String = serde::de::field(__entries, \"{tag}\", \"{name}\")?;\n\
             match __tag.as_str() {{\n{arms}\
                 other => Err(serde::DeError(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
             }}"
        );
    }

    // Externally tagged: strings for unit variants, single-key objects for
    // data variants.
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vname = &v.name;
        let wire = rename_variant(vname, rename);
        if v.fields.is_empty() {
            unit_arms.push_str(&format!("\"{wire}\" => Ok({name}::{vname}),\n"));
        } else if v.named {
            let mut body = format!(
                "let __entries = __inner.as_object().ok_or_else(|| \
                 serde::DeError::expected(\"object\", \"{name}::{vname}\"))?;\n\
                 Ok({name}::{vname} {{\n"
            );
            for f in &v.fields {
                let n = f.name.as_ref().unwrap();
                let helper = if f.attrs.default {
                    "field_or_default"
                } else {
                    "field"
                };
                body.push_str(&format!(
                    "{n}: serde::de::{helper}(__entries, \"{n}\", \"{name}::{vname}\")?,\n"
                ));
            }
            body.push_str("})");
            data_arms.push_str(&format!("\"{wire}\" => {{\n{body}\n}}\n"));
        } else if v.fields.len() == 1 {
            data_arms.push_str(&format!(
                "\"{wire}\" => Ok({name}::{vname}(serde::Deserialize::from_value(__inner)?)),\n"
            ));
        } else {
            let mut body = format!(
                "let __items = __inner.as_array().ok_or_else(|| \
                 serde::DeError::expected(\"array\", \"{name}::{vname}\"))?;\n\
                 if __items.len() != {len} {{\n\
                     return Err(serde::DeError::expected(\"array of {len}\", \
                     \"{name}::{vname}\"));\n\
                 }}\n\
                 Ok({name}::{vname}(\n",
                len = v.fields.len()
            );
            for i in 0..v.fields.len() {
                body.push_str(&format!(
                    "serde::Deserialize::from_value(&__items[{i}])?,\n"
                ));
            }
            body.push_str("))");
            data_arms.push_str(&format!("\"{wire}\" => {{\n{body}\n}}\n"));
        }
    }
    format!(
        "match __value {{\n\
             serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 other => Err(serde::DeError(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
             }},\n\
             serde::Value::Object(__obj) if __obj.len() == 1 => {{\n\
                 let (__key, __inner) = &__obj[0];\n\
                 let _ = __inner;\n\
                 match __key.as_str() {{\n{data_arms}\
                     other => Err(serde::DeError(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
             }}\n\
             other => Err(serde::DeError::expected(\"string or single-key object\", other.kind())),\n\
         }}"
    )
}
