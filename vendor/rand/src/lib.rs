//! Offline stand-in for the `rand` crate.
//!
//! The workspace vendors tiny API-compatible replacements for its external
//! dependencies so it builds with no network and no registry cache. This
//! crate covers the slice of the `rand` 0.8 surface the workspace uses:
//! `StdRng`, `SeedableRng::seed_from_u64`, `RngCore::next_u32/next_u64`,
//! and `Rng::gen_range` over half-open and inclusive integer/float ranges.
//!
//! The generator is SplitMix64 — not the upstream ChaCha12, so streams
//! differ from real `rand`, but they are deterministic, seedable, and
//! identical across platforms, which is all the workspace's reproducibility
//! tests pin against.

use std::ops::{Range, RangeInclusive};

/// Pseudo-random number generation core: a source of random `u32`/`u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Deterministic: the same
    /// seed always yields the same stream.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types [`Rng::gen_range`] can sample uniformly. Mirrors upstream's
/// `SampleUniform` so range-type inference behaves like real `rand`:
/// there is exactly one [`SampleRange`] impl per range shape.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                let draw = if inclusive {
                    if span == u64::MAX { rng.next_u64() } else { rng.next_u64() % (span + 1) }
                } else if span == 0 {
                    rng.next_u64()
                } else {
                    rng.next_u64() % span
                };
                ((lo as u128).wrapping_add(draw as u128)) as $t
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = (lo as f64 + (hi as f64 - lo as f64) * unit) as $t;
                if !inclusive && v >= hi { lo } else { v }
            }
        }
    )*};
}

impl_float_sample_uniform!(f32, f64);

/// A sampleable range of values, the argument shape of
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_between(rng, start, end, true)
    }
}

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // Scramble the raw seed once so nearby seeds diverge immediately.
            let mut rng = StdRng {
                state: state ^ 0x9e37_79b9_7f4a_7c15,
            };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain, Sebastiano Vigna).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&v));
            let w = rng.gen_range(0..3_u32);
            assert!(w < 3);
            let x = rng.gen_range(1..20_u64);
            assert!((1..20).contains(&x));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
