//! Offline stand-in for `proptest`.
//!
//! Deterministic random-sampling property tests with the combinator
//! surface this workspace uses: range strategies, `Just`, tuples,
//! `prop_map`, `prop_oneof!`, `prop::collection::vec`, `any::<bool>()`,
//! and the `proptest!`/`prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//! * **no shrinking** — a failure reports the case number and message;
//!   seeds are derived from the test name and case index, so a failing
//!   case reproduces exactly on rerun;
//! * rejection via `prop_assume!` resamples with a bounded retry budget
//!   instead of upstream's global rejection bookkeeping.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted samples each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 48 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted samples.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Why a single sampled case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property is false for this sample: the test fails.
    Fail(String),
    /// The sample fell outside the property's precondition: resample.
    Reject(String),
}

/// Result of one sampled case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms every sampled value through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A uniform choice among boxed strategies — the engine behind
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `options`; panics if empty.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(
            !options.is_empty(),
            "prop_oneof! requires at least one option"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn sample_any(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn sample_any(rng: &mut StdRng) -> bool {
        rng.gen_range(0..2u32) == 1
    }
}

impl Arbitrary for u8 {
    fn sample_any(rng: &mut StdRng) -> u8 {
        rng.gen_range(0..=u8::MAX)
    }
}

impl Arbitrary for u32 {
    fn sample_any(rng: &mut StdRng) -> u32 {
        rng.gen_range(0..=u32::MAX)
    }
}

impl Arbitrary for u64 {
    fn sample_any(rng: &mut StdRng) -> u64 {
        rng.gen_range(0..=u64::MAX)
    }
}

impl Arbitrary for usize {
    fn sample_any(rng: &mut StdRng) -> usize {
        rng.gen_range(0..=usize::MAX)
    }
}

/// The strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::sample_any(rng)
    }
}

/// A strategy for any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(PhantomData)
}

/// Collection strategies (`prop::collection` in upstream paths).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A permissible length span for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange {
                lo: exact,
                hi_inclusive: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and
    /// whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Drives one property: samples `cfg.cases` accepted cases, resampling
/// rejected ones with a bounded budget, and panics on the first failing
/// case. Seeds derive from `name` and the case/attempt counters, so runs
/// are deterministic and failures reproduce.
pub fn run_property<F>(name: &str, cfg: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    let base = fnv1a(name.as_bytes());
    let reject_budget = cfg.cases as u64 * 256 + 1024;
    let mut rejects = 0u64;
    for case in 0..cfg.cases {
        let mut attempt = 0u64;
        loop {
            let seed = base
                ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ attempt.wrapping_mul(0xd1b5_4a32_d192_ed03);
            let mut rng = StdRng::seed_from_u64(seed);
            match body(&mut rng) {
                Ok(()) => break,
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    attempt += 1;
                    assert!(
                        rejects <= reject_budget,
                        "property `{name}`: too many rejected samples ({why})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property `{name}` failed at case {case}: {msg}")
                }
            }
        }
    }
}

/// Declares `#[test]` property functions whose arguments are sampled from
/// strategies. Supports an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            $crate::run_property(stringify!($name), &__cfg, |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)*
                $body
                Ok(())
            });
        }
    )*};
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) if false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current sample (resampling it) when its precondition does
/// not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// A uniform choice among the listed strategies, all producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let __options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strat)),+];
        $crate::Union::new(__options)
    }};
}

/// The workspace-facing import surface, mirroring upstream paths.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirrors upstream's `prop` module alias (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        fn ranges_in_bounds(x in 0.0..1.0f64, n in 1..10usize) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        fn vec_lengths(v in prop::collection::vec((0.0..5.0f64, any::<bool>()), 1..7)) {
            prop_assert!(!v.is_empty() && v.len() < 7);
        }

        fn oneof_and_map(v in prop_oneof![
            Just(1u32),
            (10..20u32).prop_map(|x| x * 2),
        ]) {
            prop_assert!(v == 1 || (20..40).contains(&v), "v = {v}");
        }

        fn assume_rejects(n in 0..100u32) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::run_property("always_fails", &ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::Fail("nope".into()))
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first: Vec<f64> = Vec::new();
        crate::run_property("det", &ProptestConfig::with_cases(8), |rng| {
            first.push(Strategy::sample(&(0.0..1.0f64), rng));
            Ok(())
        });
        let mut second: Vec<f64> = Vec::new();
        crate::run_property("det", &ProptestConfig::with_cases(8), |rng| {
            second.push(Strategy::sample(&(0.0..1.0f64), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }
}
