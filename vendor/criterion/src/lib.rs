//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use —
//! `Criterion::bench_function`, `benchmark_group` with `sample_size` and
//! `finish`, `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a deliberately simple measurement
//! loop: a short warm-up, then a fixed number of timed samples whose
//! mean per-iteration wall-clock time is printed. No statistics, plots,
//! or baselines; `cargo bench` here answers "roughly how fast, and did
//! it compile" rather than upstream's rigorous comparisons.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the last `iter` call.
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, first warming up briefly, then averaging over a
    /// bounded number of timed iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~50ms have passed or 3 iterations, whichever
        // comes first, and estimate the per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u32;
        while warmup_iters < 3 || warmup_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed() / warmup_iters;

        // Aim for ~200ms of measurement, bounded by the sample budget.
        let target = Duration::from_millis(200);
        let iters = if per_iter.is_zero() {
            self.samples as u32
        } else {
            ((target.as_nanos() / per_iter.as_nanos().max(1)) as u32).clamp(1, self.samples as u32)
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.last_mean = Some(start.elapsed() / iters);
    }
}

/// A named family of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the sample budget for subsequent benches in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, &mut f);
        let _ = &self.criterion;
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&id, self.sample_size, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples,
        last_mean: None,
    };
    f(&mut bencher);
    match bencher.last_mean {
        Some(mean) => println!("bench {id:<50} {mean:>12.2?}/iter"),
        None => println!("bench {id:<50} (no measurement)"),
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_flows() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("id", |b| b.iter(|| black_box(2 * 2)));
        group.bench_function(format!("fmt/{}", 3), |b| b.iter(|| black_box(3 * 3)));
        group.finish();
    }
}
