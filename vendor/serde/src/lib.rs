//! Offline stand-in for `serde`.
//!
//! The real serde is a zero-copy visitor framework; this stand-in trades
//! all of that for a tiny owned-value model: serializing builds a
//! [`Value`] tree, deserializing reads one. `serde_json` (the vendored
//! stand-in) renders and parses that tree. The derive macros in
//! `serde_derive` generate `to_value`/`from_value` impls supporting the
//! attribute subset the workspace uses: `#[serde(transparent)]`,
//! `#[serde(default)]`, and `#[serde(tag = "...", rename_all =
//! "snake_case")]`, plus plain externally-tagged enums.
//!
//! Semantics worth knowing:
//! * numbers parse into the narrowest of `U64`/`I64`/`F64`, and numeric
//!   `from_value` impls convert between them when lossless;
//! * non-finite floats serialize as bare `Infinity` / `-Infinity` / `NaN`
//!   tokens (accepted by Python's `json`, used by the CI validators);
//! * a missing struct field deserializes as `Value::Null`, so `Option`
//!   fields tolerate omission exactly like upstream serde.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// The owned data model every serialization round-trips through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Negative integers.
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    /// Everything else numeric, including non-finite values.
    F64(f64),
    /// JSON strings.
    Str(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// A short name for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a message describing what failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// A "expected X, found Y" error while decoding `what`.
    #[must_use]
    pub fn expected(expected: &str, what: &str) -> DeError {
        DeError(format!("invalid {what}: expected {expected}"))
    }

    /// A missing-field error.
    #[must_use]
    pub fn missing(field: &str, ty: &str) -> DeError {
        DeError(format!("missing field `{field}` in {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Decodes `value` into `Self`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other.kind())),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, DeError> {
                let wide = match value {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => return Err(DeError::expected("unsigned integer", other.kind())),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::expected(stringify!($t), "out-of-range integer"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, DeError> {
                let wide = match value {
                    Value::I64(i) => *i,
                    Value::U64(u) if *u <= i64::MAX as u64 => *u as i64,
                    Value::F64(f)
                        if f.fract() == 0.0
                            && *f >= i64::MIN as f64
                            && *f <= i64::MAX as f64 =>
                    {
                        *f as i64
                    }
                    other => return Err(DeError::expected("integer", other.kind())),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::expected(stringify!($t), "out-of-range integer"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<f64, DeError> {
        match value {
            Value::F64(f) => Ok(*f),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            other => Err(DeError::expected("number", other.kind())),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<f32, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<char, DeError> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-character string", "string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<[T; N], DeError> {
        let items = Vec::<T>::from_value(value)?;
        <[T; N]>::try_from(items).map_err(|_| DeError::expected("array of fixed length", "array"))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<BTreeMap<String, V>, DeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "map"))?;
        entries
            .iter()
            .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<($($name,)+), DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", "tuple"))?;
                let mut it = items.iter();
                let out = ($(
                    $name::from_value(
                        it.next().ok_or_else(|| DeError::expected("longer array", "tuple"))?,
                    )?,
                )+);
                Ok(out)
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Value, DeError> {
        Ok(value.clone())
    }
}

/// Deserialization helpers, mirroring the `serde::de` module path.
pub mod de {
    use super::{DeError, Deserialize, Value};

    /// Upstream-compatible alias: this stand-in's `Deserialize` is already
    /// owned, so the bound is the trait itself.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}

    /// Decodes field `name` from a struct's object entries. A missing
    /// field decodes as [`Value::Null`], which succeeds for `Option`
    /// fields and fails with a missing-field error otherwise.
    pub fn field<T: Deserialize>(
        entries: &[(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<T, DeError> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v).map_err(|e| DeError(format!("{ty}.{name}: {e}"))),
            None => T::from_value(&Value::Null).map_err(|_| DeError::missing(name, ty)),
        }
    }

    /// Like [`field`], but a missing or null field falls back to
    /// `Default::default()` — the `#[serde(default)]` behavior.
    pub fn field_or_default<T: Deserialize + Default>(
        entries: &[(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<T, DeError> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, Value::Null)) | None => Ok(T::default()),
            Some((_, v)) => T::from_value(v).map_err(|e| DeError(format!("{ty}.{name}: {e}"))),
        }
    }
}

/// Serialization helpers, mirroring the `serde::ser` module path.
pub mod ser {
    pub use super::Serialize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(None::<u64>.to_value(), Value::Null);
        assert_eq!(Some(3u64).to_value(), Value::U64(3));
    }

    #[test]
    fn numeric_widening() {
        assert_eq!(f64::from_value(&Value::U64(4)).unwrap(), 4.0);
        assert_eq!(u64::from_value(&Value::F64(4.0)).unwrap(), 4);
        assert!(u64::from_value(&Value::F64(4.5)).is_err());
        assert!(u32::from_value(&Value::U64(u64::MAX)).is_err());
        assert_eq!(i64::from_value(&Value::U64(9)).unwrap(), 9);
    }

    #[test]
    fn missing_field_is_null_for_option() {
        let entries: Vec<(String, Value)> = vec![];
        let missing: Option<f64> = de::field(&entries, "gone", "T").unwrap();
        assert_eq!(missing, None);
        assert!(de::field::<f64>(&entries, "gone", "T").is_err());
    }

    #[test]
    fn field_or_default_falls_back() {
        let entries: Vec<(String, Value)> = vec![("x".into(), Value::U64(7))];
        let x: u64 = de::field_or_default(&entries, "x", "T").unwrap();
        let y: u64 = de::field_or_default(&entries, "y", "T").unwrap();
        assert_eq!((x, y), (7, 0));
    }
}
