#!/usr/bin/env bash
# Local CI: formatting, lints, the full test suite, and the fault-injection
# property suite. Run from the workspace root; everything is offline.
set -euo pipefail
cd "$(dirname "$0")"

# First-party packages only — the vendored offline mini-crates under
# vendor/ are exempt from fmt/clippy (they mirror external code).
PACKAGES=(
  datacenter-sprinting
  dcs-units dcs-breaker dcs-ups dcs-thermal dcs-server dcs-power
  dcs-workload dcs-faults dcs-core dcs-sim dcs-econ dcs-testbed dcs-bench
)

echo "== rustfmt =="
fmt_paths=(src crates/*/src crates/*/tests tests examples)
mapfile -t fmt_files < <(find "${fmt_paths[@]}" -name '*.rs' 2>/dev/null)
rustfmt --edition 2021 --check "${fmt_files[@]}"

echo "== clippy =="
clippy_args=()
for p in "${PACKAGES[@]}"; do clippy_args+=(-p "$p"); done
cargo clippy "${clippy_args[@]}" --all-targets --offline -- -D warnings

echo "== tests =="
cargo test --workspace --offline -q

echo "== fault suite =="
cargo test -p dcs-sim --test faults --offline -q

echo "== benches compile =="
cargo bench --workspace --offline --no-run -q

echo "== perf report smoke =="
# Tiny-scale run of the perf-trajectory harness; the binary exits non-zero
# if the pruned search diverges from the exhaustive one or the JSON does
# not round-trip.
smoke_json="$(mktemp)"
cargo run --release -p dcs-bench --bin perf_report --offline -q -- \
  --tiny --out "$smoke_json" > /dev/null
python3 - "$smoke_json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
required = ["schema", "mode", "run_full", "run_lean", "oracle_exhaustive",
            "oracle_pruned", "table_exhaustive", "table_pruned", "best_bound"]
missing = [k for k in required if k not in report]
assert not missing, f"perf report missing sections: {missing}"
assert report["schema"] == "dcs-bench/perf-report-v1", report["schema"]
assert report["mode"] == "tiny", report["mode"]
for k in required[2:8]:
    assert report[k]["time_ms"] > 0, f"{k} has no timing"
print(f"perf report OK ({len(required)} sections)")
EOF
rm -f "$smoke_json"

echo "CI green."
