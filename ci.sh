#!/usr/bin/env bash
# Local CI: formatting, lints, the full test suite, and the fault-injection
# property suite. Run from the workspace root; everything is offline.
set -euo pipefail
cd "$(dirname "$0")"

# First-party packages only — the vendored offline mini-crates under
# vendor/ are exempt from fmt/clippy (they mirror external code).
PACKAGES=(
  datacenter-sprinting
  dcs-units dcs-breaker dcs-ups dcs-thermal dcs-server dcs-power
  dcs-workload dcs-faults dcs-core dcs-sim dcs-service dcs-econ dcs-testbed
  dcs-bench
)

echo "== rustfmt =="
fmt_paths=(src crates/*/src crates/*/tests tests examples)
mapfile -t fmt_files < <(find "${fmt_paths[@]}" -name '*.rs' 2>/dev/null)
rustfmt --edition 2021 --check "${fmt_files[@]}"

echo "== clippy =="
clippy_args=()
for p in "${PACKAGES[@]}"; do clippy_args+=(-p "$p"); done
cargo clippy "${clippy_args[@]}" --all-targets --offline -- -D warnings

echo "== tests =="
cargo test --workspace --offline -q

echo "== docs (missing or broken docs are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline -q

echo "== fault suite =="
cargo test -p dcs-sim --test faults --offline -q

echo "== chaos smoke (supervised execution under injected failures) =="
# Panic-isolated sweeps, deadline watchdog trips, checkpoint kill/resume,
# truncation/bit-flip corruption fallback — all asserting bit-identical
# results against clean runs.
cargo test -p dcs-sim --test chaos --offline -q

echo "== simulate CLI exit codes =="
cargo test -p dcs-bench --test simulate_cli --offline -q

echo "== benches compile =="
cargo bench --workspace --offline --no-run -q

echo "== perf report smoke (batched vs independent, supervised vs plain, hyperscale) =="
# Tiny-scale run of the perf-trajectory harness. The binary exits non-zero
# unless every batched result — Oracle best bounds/outcomes, the table
# cell-for-cell, and the per-lane summaries under a random fault schedule —
# is bit-identical to the independent per-lane runs, the supervised +
# checkpointed table build reproduces the plain batched build, and a build
# killed at a snapshot boundary resumes to the identical table. A written
# report is itself the smoke; the validator double-checks the flags and
# that every timed section carries honest work counts. (The <=5% supervised
# overhead budget is enforced by the binary in full mode only — tiny-scale
# tables finish in ~2 ms, so checkpoint I/O dominates and the ratio is
# meaningless there.) The v6 scale_hyperscale section runs even in tiny
# mode (at reduced but still thousand-PDU dimensions): it re-asserts
# batched == independent and thread-count invariance on the hyperscale
# facility and records the worker-budget sweep.
smoke_json="$(mktemp)"
cargo run --release -p dcs-bench --bin perf_report --offline -q -- \
  --tiny --out "$smoke_json" > /dev/null
python3 - "$smoke_json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
sections = ["run_full", "run_lean", "oracle_exhaustive", "oracle_pruned",
            "oracle_pruned_unbatched", "table_exhaustive", "table_pruned",
            "table_pruned_unbatched", "table_pruned_supervised"]
required = ["schema", "mode", "batched_equals_independent", "best_bound",
            "supervised_table_overhead", "supervised_overhead_within_budget",
            "kill_resume_reproduces_table", "kernel_overhead",
            "speedup_run_vs_pr5", "speedup_oracle_vs_pr5",
            "speedup_table_vs_pr5", "scale_hyperscale"] + sections
missing = [k for k in required if k not in report]
assert not missing, f"perf report missing sections: {missing}"
assert report["schema"] == "dcs-bench/perf-report-v6", report["schema"]
assert report["mode"] == "tiny", report["mode"]
# kernel_overhead is anchored to full-mode PR4 timings; tiny mode runs a
# different scale, so the section must be present but null here. A full
# run must land within budget (the binary aborts otherwise). The same
# goes for the PR5 speedup anchors.
ko = report["kernel_overhead"]
assert ko is None or ko["within_budget"] is True, ko
assert report["batched_equals_independent"] is True, \
    "batched engine diverged from independent per-lane runs"
assert report["kill_resume_reproduces_table"] is True, \
    "kill-and-resume did not reproduce the table"
hy = report["scale_hyperscale"]
assert hy["batched_equals_independent"] is True, \
    "hyperscale batched engine diverged from independent runs"
assert hy["thread_count_invariant"] is True, \
    "hyperscale table diverged across worker budgets"
assert hy["pdus"] >= 1000, f"hyperscale has only {hy['pdus']} PDUs"
assert hy["total_cores"] >= 250_000, hy["total_cores"]
assert len(hy["thread_scaling"]) >= 2 \
    and all(p["table_ms"] > 0 for p in hy["thread_scaling"]), \
    "hyperscale worker sweep is incomplete"
assert 0 < hy["parallel_efficiency"], hy["parallel_efficiency"]
batched = 0
hy_sections = [("hyperscale." + k, hy[k])
               for k in ["run_lean", "oracle_pruned", "table_pruned"]]
for k, sec in [(k, report[k]) for k in sections] + hy_sections:
    assert sec["time_ms"] > 0, f"{k} has no timing"
    assert sec["sim_runs"] > 0, f"{k} has no work count"
    lanes = sec.get("lane_steps")
    if lanes is not None:
        assert lanes["live"] > 0 and lanes["unique_lanes"] > 0, \
            f"{k} went through the batched engine but reports no lane steps"
        batched += 1
assert batched >= 7, f"only {batched} sections report lane steps"
print(f"perf report OK ({len(sections) + len(hy_sections)} sections, "
      f"{batched} batched, hyperscale {hy['total_cores']} cores)")
EOF
rm -f "$smoke_json"

echo "== service smoke (sprintd: 1k live decisions, kill -9, bit-identical resume) =="
# Boots the real daemon, drives 1000 /step decisions over one keep-alive
# connection (zero 5xx tolerated), snapshots /status, SIGKILLs the
# process, restarts it on the same state directory, and asserts the
# restored facility section — breaker thermal memory, UPS/TES charge,
# room temperature — is bit-identical JSON. checkpoint_every=1 makes
# every decision durable before its response.
cargo build --release -p dcs-service --bin sprintd --offline -q
svc_dir="$(mktemp -d)"
printf '%s\n' '{"pdus":2,"servers_per_pdu":20,"checkpoint_every":1}' \
  > "$svc_dir/service.json"
svc_pid=""
svc_addr=""
boot_sprintd() {
  : > "$svc_dir/boot.log"
  target/release/sprintd "$svc_dir/service.json" \
    --state-dir "$svc_dir/state" --port 0 > "$svc_dir/boot.log" &
  svc_pid=$!
  svc_addr=""
  for _ in $(seq 200); do
    svc_addr="$(sed -n 's/^listening on //p' "$svc_dir/boot.log")"
    [ -n "$svc_addr" ] && break
    sleep 0.05
  done
  [ -n "$svc_addr" ] || { echo "sprintd did not boot"; exit 1; }
}
boot_sprintd
python3 - "$svc_addr" "$svc_dir/before.json" <<'EOF'
import http.client, json, sys
addr, out = sys.argv[1], sys.argv[2]
host, port = addr.rsplit(":", 1)
conn = http.client.HTTPConnection(host, int(port), timeout=30)
for i in range(1000):
    demand = 2.6 if i % 60 < 12 else 0.6
    conn.request("POST", "/step", json.dumps({"demand": demand}))
    r = conn.getresponse()
    body = r.read()
    assert r.status == 200, f"step {i}: {r.status} {body!r}"
conn.request("GET", "/status")
status = json.loads(conn.getresponse().read())
assert status["mode"] == "serving", status["mode"]
assert status["decisions"] == 1000, status["decisions"]
assert status["counters"]["served"] == 1000, status["counters"]
with open(out, "w") as f:
    json.dump(status, f)
print("service smoke: 1000 decisions served, zero 5xx")
EOF
kill -9 "$svc_pid"
wait "$svc_pid" 2>/dev/null || true
boot_sprintd
python3 - "$svc_addr" "$svc_dir/before.json" <<'EOF'
import http.client, json, sys
addr, before_path = sys.argv[1], sys.argv[2]
before = json.load(open(before_path))
host, port = addr.rsplit(":", 1)
conn = http.client.HTTPConnection(host, int(port), timeout=30)
conn.request("GET", "/status")
after = json.loads(conn.getresponse().read())
assert after["decisions"] == before["decisions"], \
    (after["decisions"], before["decisions"])
assert after["facility"] == before["facility"], \
    "facility hot state diverged across kill -9"
assert after["sprint"] == before["sprint"], \
    (after["sprint"], before["sprint"])
conn.request("POST", "/shutdown")
assert conn.getresponse().status == 200
print("service smoke: kill -9 resume is bit-identical")
EOF
wait "$svc_pid"
rm -rf "$svc_dir"

echo "== chaos soak (1k decisions through the seeded fault proxy) =="
# The seeded ChaosProxy soak: a RetryClient drives 1,000 decisions through
# injected resets, truncations, stalls, and trickled bytes, then asserts
# the post-soak hot state is bit-identical to a clean run of the same
# demand stream (exactly-once under ambiguous retries). The stage timeout
# is the zero-hang proof: a single wedged read would blow it.
timeout 300 cargo test -p dcs-service --test soak --offline -q

echo "== load report (multi-client throughput, chaos mode, idempotent retry) =="
# Full-mode run: the binary itself aborts unless the bare engine clears
# 50k decisions/s with a sub-ms p99, the single-connection and pipelined
# multi-client drives see zero 5xx, the aggregate pipelined rate clears
# its floor, the chaos-proxy run surfaces only typed errors and advances
# the plant exactly once per decision, and the forced ambiguous retry is
# replayed rather than re-applied. The validator re-checks every flag
# from the written report.
load_json="$(mktemp)"
cargo run --release -p dcs-bench --bin load_report --offline -q -- \
  --out "$load_json" > /dev/null
python3 - "$load_json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema"] == "dcs-bench/perf-report-v7", r["schema"]
assert r["mode"] == "full", r["mode"]
e, h = r["engine"], r["http"]
m, c, idem = r["http_multi"], r["chaos"], r["idempotent_retry"]
assert e["decisions"] >= 100_000, e["decisions"]
assert e["rate_per_sec"] >= 50_000, e["rate_per_sec"]
assert e["latency"]["p99_us"] < 1_000, e["latency"]
assert e["meets_rate_floor"] and e["sub_ms_p99"], e
assert h["requests"] >= 1_000, h["requests"]
assert h["responses_5xx"] == 0 and h["zero_5xx"], h
assert h["rate_per_sec"] > 100, h["rate_per_sec"]
# Aggregate pipelined throughput: the worker-pool accept path must
# sustain many concurrent clients without a single 5xx.
assert m["clients"] >= 4 and m["pipeline_depth"] >= 8, m
assert m["requests"] >= 10_000, m["requests"]
assert m["responses_5xx"] == 0 and m["zero_5xx"], m
assert m["aggregate_rate_per_sec"] >= 25_000, m["aggregate_rate_per_sec"]
assert m["meets_rate_floor"], m
# Chaos mode: faults were actually injected, every surfaced error was
# typed, and the plant advanced exactly once per intended decision.
assert c["decisions"] >= 1_000, c["decisions"]
faults = (c["injected_resets"] + c["injected_truncations"]
          + c["injected_stalls"] + c["injected_trickles"])
assert faults > 0, "chaos run injected no faults"
assert c["client_retries"] > 0, "chaos never forced a retry"
assert c["untyped_errors"] == 0, c["untyped_errors"]
assert c["exactly_once"], "chaos run was not exactly-once"
# The forced ambiguous retry: replayed, never re-applied.
assert idem["replayed_on_retry"], idem
assert idem["no_double_advance"], idem
assert idem["conflict_is_typed"], idem
print(f"load report OK: engine {e['rate_per_sec']:.0f}/s "
      f"(p99 {e['latency']['p99_us']:.1f} us), "
      f"http {h['rate_per_sec']:.0f}/s, "
      f"multi {m['aggregate_rate_per_sec']:.0f}/s aggregate, "
      f"chaos {faults} faults / {c['client_retries']} retries / "
      f"0 untyped, idempotent retry OK")
EOF
rm -f "$load_json"

echo "CI green."
