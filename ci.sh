#!/usr/bin/env bash
# Local CI: formatting, lints, the full test suite, and the fault-injection
# property suite. Run from the workspace root; everything is offline.
set -euo pipefail
cd "$(dirname "$0")"

# First-party packages only — the vendored offline mini-crates under
# vendor/ are exempt from fmt/clippy (they mirror external code).
PACKAGES=(
  datacenter-sprinting
  dcs-units dcs-breaker dcs-ups dcs-thermal dcs-server dcs-power
  dcs-workload dcs-faults dcs-core dcs-sim dcs-econ dcs-testbed dcs-bench
)

echo "== rustfmt =="
fmt_paths=(src crates/*/src crates/*/tests tests examples)
mapfile -t fmt_files < <(find "${fmt_paths[@]}" -name '*.rs' 2>/dev/null)
rustfmt --edition 2021 --check "${fmt_files[@]}"

echo "== clippy =="
clippy_args=()
for p in "${PACKAGES[@]}"; do clippy_args+=(-p "$p"); done
cargo clippy "${clippy_args[@]}" --all-targets --offline -- -D warnings

echo "== tests =="
cargo test --workspace --offline -q

echo "== docs (missing or broken docs are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline -q

echo "== fault suite =="
cargo test -p dcs-sim --test faults --offline -q

echo "== chaos smoke (supervised execution under injected failures) =="
# Panic-isolated sweeps, deadline watchdog trips, checkpoint kill/resume,
# truncation/bit-flip corruption fallback — all asserting bit-identical
# results against clean runs.
cargo test -p dcs-sim --test chaos --offline -q

echo "== simulate CLI exit codes =="
cargo test -p dcs-bench --test simulate_cli --offline -q

echo "== benches compile =="
cargo bench --workspace --offline --no-run -q

echo "== perf report smoke (batched vs independent, supervised vs plain) =="
# Tiny-scale run of the perf-trajectory harness. The binary exits non-zero
# unless every batched result — Oracle best bounds/outcomes, the table
# cell-for-cell, and the per-lane summaries under a random fault schedule —
# is bit-identical to the independent per-lane runs, the supervised +
# checkpointed table build reproduces the plain batched build, and a build
# killed at a snapshot boundary resumes to the identical table. A written
# report is itself the smoke; the validator double-checks the flags and
# that every timed section carries honest work counts. (The <=5% supervised
# overhead budget is enforced by the binary in full mode only — tiny-scale
# tables finish in ~2 ms, so checkpoint I/O dominates and the ratio is
# meaningless there.)
smoke_json="$(mktemp)"
cargo run --release -p dcs-bench --bin perf_report --offline -q -- \
  --tiny --out "$smoke_json" > /dev/null
python3 - "$smoke_json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
sections = ["run_full", "run_lean", "oracle_exhaustive", "oracle_pruned",
            "oracle_pruned_unbatched", "table_exhaustive", "table_pruned",
            "table_pruned_unbatched", "table_pruned_supervised"]
required = ["schema", "mode", "batched_equals_independent", "best_bound",
            "supervised_table_overhead", "supervised_overhead_within_budget",
            "kill_resume_reproduces_table", "kernel_overhead"] + sections
missing = [k for k in required if k not in report]
assert not missing, f"perf report missing sections: {missing}"
assert report["schema"] == "dcs-bench/perf-report-v4", report["schema"]
assert report["mode"] == "tiny", report["mode"]
# kernel_overhead is anchored to full-mode PR4 timings; tiny mode runs a
# different scale, so the section must be present but null here. A full
# run must land within budget (the binary aborts otherwise).
ko = report["kernel_overhead"]
assert ko is None or ko["within_budget"] is True, ko
assert report["batched_equals_independent"] is True, \
    "batched engine diverged from independent per-lane runs"
assert report["kill_resume_reproduces_table"] is True, \
    "kill-and-resume did not reproduce the table"
batched = 0
for k in sections:
    assert report[k]["time_ms"] > 0, f"{k} has no timing"
    assert report[k]["sim_runs"] > 0, f"{k} has no work count"
    lanes = report[k].get("lane_steps")
    if lanes is not None:
        assert lanes["live"] > 0 and lanes["unique_lanes"] > 0, \
            f"{k} went through the batched engine but reports no lane steps"
        batched += 1
assert batched >= 5, f"only {batched} sections report lane steps"
print(f"perf report OK ({len(sections)} sections, {batched} batched)")
EOF
rm -f "$smoke_json"

echo "CI green."
