#!/usr/bin/env bash
# Local CI: formatting, lints, the full test suite, and the fault-injection
# property suite. Run from the workspace root; everything is offline.
set -euo pipefail
cd "$(dirname "$0")"

# First-party packages only — the vendored offline mini-crates under
# vendor/ are exempt from fmt/clippy (they mirror external code).
PACKAGES=(
  datacenter-sprinting
  dcs-units dcs-breaker dcs-ups dcs-thermal dcs-server dcs-power
  dcs-workload dcs-faults dcs-core dcs-sim dcs-econ dcs-testbed dcs-bench
)

echo "== rustfmt =="
fmt_paths=(src crates/*/src crates/*/tests tests examples)
mapfile -t fmt_files < <(find "${fmt_paths[@]}" -name '*.rs' 2>/dev/null)
rustfmt --edition 2021 --check "${fmt_files[@]}"

echo "== clippy =="
clippy_args=()
for p in "${PACKAGES[@]}"; do clippy_args+=(-p "$p"); done
cargo clippy "${clippy_args[@]}" --all-targets --offline -- -D warnings

echo "== tests =="
cargo test --workspace --offline -q

echo "== fault suite =="
cargo test -p dcs-sim --test faults --offline -q

echo "CI green."
