//! Data Center Sprinting — a from-scratch Rust reproduction of
//! *"Data Center Sprinting: Enabling Computational Sprinting at the Data
//! Center Level"* (Zheng & Wang, ICDCS 2015).
//!
//! This façade crate re-exports the workspace's public API under short
//! module names; see `README.md` for the architecture and `DESIGN.md` for
//! the system inventory.
//!
//! # Examples
//!
//! ```
//! use datacenter_sprinting::core::{ControllerConfig, Greedy, SprintController};
//! use datacenter_sprinting::power::DataCenterSpec;
//! use datacenter_sprinting::units::Seconds;
//!
//! let spec = DataCenterSpec::paper_default().with_scale(2, 200);
//! let config = ControllerConfig::default();
//! let mut ctl = SprintController::new(&spec, &config, Box::new(Greedy));
//! let record = ctl.step(2.0, Seconds::new(1.0));
//! assert!(record.served > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dcs_breaker as breaker;
pub use dcs_core as core;
pub use dcs_econ as econ;
pub use dcs_faults as faults;
pub use dcs_power as power;
pub use dcs_server as server;
pub use dcs_sim as sim;
pub use dcs_testbed as testbed;
pub use dcs_thermal as thermal;
pub use dcs_units as units;
pub use dcs_ups as ups;
pub use dcs_workload as workload;
