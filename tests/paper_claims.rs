//! Integration tests pinning the paper's headline claims, end-to-end
//! through every crate in the workspace.
//!
//! These run at reduced facility scale (4 PDUs x 200 servers); all
//! normalized metrics are scale-free (every store and rating is
//! proportional to the server count).

use datacenter_sprinting::core::{ControllerConfig, Greedy};
use datacenter_sprinting::power::DataCenterSpec;
use datacenter_sprinting::sim::{
    oracle_search, run, run_no_sprint, run_uncontrolled, Scenario, UncontrolledMode,
};
use datacenter_sprinting::units::Seconds;
use datacenter_sprinting::workload::{ms_trace, yahoo_trace};

fn spec() -> DataCenterSpec {
    DataCenterSpec::paper_default().with_scale(4, 200)
}

fn ms_scenario() -> Scenario {
    Scenario::new(
        spec(),
        ControllerConfig::default(),
        ms_trace::paper_default(),
    )
}

/// §VII-A / Fig. 8(a): uncontrolled chip-level sprinting trips a breaker a
/// few minutes into the MS trace (the paper's testbed: 5 min 20 s) and
/// blacks the facility out.
#[test]
fn uncontrolled_sprinting_trips_a_breaker_in_minutes() {
    let result = run_uncontrolled(&ms_scenario(), UncontrolledMode::RunToTrip);
    let (when, _) = result.trip.clone().expect("must trip");
    assert!(
        when > Seconds::from_minutes(3.0) && when < Seconds::from_minutes(8.0),
        "tripped at {when}, paper: 5 min 20 s"
    );
    // Blackout: nothing served afterwards.
    let after: Vec<_> = result.records.iter().filter(|r| r.time > when).collect();
    assert!(!after.is_empty() && after.iter().all(|r| r.served == 0.0));
}

/// §VII-A / Fig. 8(b): Data Center Sprinting sustains the boost with no
/// trips and no overheating, far outperforming the uncontrolled baseline.
#[test]
fn controlled_sprinting_sustains_where_uncontrolled_fails() {
    let scenario = ms_scenario();
    let sprint = run(&scenario, Box::new(Greedy));
    assert!(!sprint.any_tripped());
    assert!(!sprint.any_overheated());
    let uncontrolled = run_uncontrolled(&scenario, UncontrolledMode::RunToTrip);
    assert!(sprint.average_performance() > 2.0 * uncontrolled.average_performance());
}

/// Headline: the burst-window improvement factor on the MS trace falls in
/// (a band around) the paper's 1.62-1.76x.
#[test]
fn ms_trace_improvement_factor_matches_paper_band() {
    let scenario = ms_scenario();
    let base = run_no_sprint(&scenario);
    let greedy = run(&scenario, Box::new(Greedy));
    let factor = greedy.burst_improvement_over(&base, 1.0);
    assert!(
        (1.5..=2.2).contains(&factor),
        "MS Greedy factor {factor}, paper band 1.62-1.76"
    );
}

/// §VII-A: the energy split — UPS largest-or-comparable share, TES the
/// smallest, around the paper's UPS 54% / TES 13%.
#[test]
fn energy_split_shape_matches_paper() {
    let greedy = run(&ms_scenario(), Box::new(Greedy));
    let (cb, ups, tes) = greedy.energy_shares();
    assert!((cb + ups + tes - 1.0).abs() < 1e-9);
    assert!(tes < cb && tes < ups, "TES must be the smallest share");
    assert!((0.05..0.30).contains(&tes), "TES share {tes}, paper 13%");
    assert!(ups > 0.25, "UPS share {ups}, paper 54%");
}

/// §VII-C / Fig. 10(a): for short bursts, Greedy achieves the Oracle's
/// performance — stored energy is not binding.
#[test]
fn greedy_matches_oracle_on_short_bursts() {
    let scenario = Scenario::new(
        spec(),
        ControllerConfig::default(),
        yahoo_trace::with_burst(1, 3.0, Seconds::from_minutes(5.0)),
    );
    let greedy = run(&scenario, Box::new(Greedy));
    let oracle = oracle_search(&scenario);
    assert!(
        oracle.best.average_performance() - greedy.average_performance() < 0.01,
        "oracle {} vs greedy {}",
        oracle.best.average_performance(),
        greedy.average_performance()
    );
}

/// §VII-C / Fig. 10(b): for long bursts the Oracle constrains the
/// sprinting degree below the hardware maximum and beats Greedy.
#[test]
fn oracle_constrains_and_beats_greedy_on_long_bursts() {
    let scenario = Scenario::new(
        spec(),
        ControllerConfig::default(),
        yahoo_trace::with_burst(1, 3.2, Seconds::from_minutes(15.0)),
    );
    let base = run_no_sprint(&scenario);
    let greedy = run(&scenario, Box::new(Greedy));
    let oracle = oracle_search(&scenario);
    assert!(
        oracle.best_bound.as_f64() < 4.0,
        "bound {}",
        oracle.best_bound
    );
    assert!(
        oracle.best.burst_improvement_over(&base, 1.0) > greedy.burst_improvement_over(&base, 1.0)
    );
}

/// Headline: across the Yahoo sweep the improvement factors bracket the
/// paper's 1.75-2.45x.
#[test]
fn yahoo_improvement_factors_match_paper_band() {
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for (degree, minutes) in [(2.6, 5.0), (3.2, 15.0)] {
        let scenario = Scenario::new(
            spec(),
            ControllerConfig::default(),
            yahoo_trace::with_burst(1, degree, Seconds::from_minutes(minutes)),
        );
        let base = run_no_sprint(&scenario);
        let factor = run(&scenario, Box::new(Greedy)).burst_improvement_over(&base, 1.0);
        lo = lo.min(factor);
        hi = hi.max(factor);
    }
    assert!(lo > 1.5, "low end {lo}, paper 1.75");
    assert!(hi > 2.2 && hi < 3.2, "high end {hi}, paper 2.45");
}

/// The paper's safety claim, stress-tested: no breaker trip and no
/// overheating under ANY strategy across burst profiles.
#[test]
fn no_trips_or_overheating_across_the_sweep() {
    for (degree, minutes) in [(2.6, 1.0), (3.6, 5.0), (3.2, 15.0), (3.6, 15.0)] {
        let scenario = Scenario::new(
            spec(),
            ControllerConfig::default(),
            yahoo_trace::with_burst(3, degree, Seconds::from_minutes(minutes)),
        );
        let result = run(&scenario, Box::new(Greedy));
        assert!(!result.any_tripped(), "tripped at ({degree}, {minutes})");
        assert!(
            !result.any_overheated(),
            "overheated at ({degree}, {minutes})"
        );
    }
}
