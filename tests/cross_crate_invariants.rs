//! Cross-crate physical invariants: conservation laws and safety
//! properties that must hold across the controller, the power topology,
//! the stores and the thermal plant together.

use datacenter_sprinting::core::{ControllerConfig, FixedBound, Greedy, SprintController};
use datacenter_sprinting::power::DataCenterSpec;
use datacenter_sprinting::units::{Energy, Power, Ratio, Seconds};
use datacenter_sprinting::workload::ms_trace;

fn spec() -> DataCenterSpec {
    DataCenterSpec::paper_default().with_scale(4, 200)
}

/// IT power is conserved: PDU-delivered power plus UPS power covers the
/// servers' draw every step.
#[test]
fn it_power_is_conserved_each_step() {
    let spec = spec();
    let config = ControllerConfig::default();
    let mut ctl = SprintController::new(&spec, &config, Box::new(Greedy));
    let trace = ms_trace::paper_default();
    for (_, demand) in trace.iter() {
        let r = ctl.step(demand, Seconds::new(1.0));
        // cb_extra_power is net-of-UPS power above peak normal; reconstruct
        // the PDU draw and compare against IT power.
        let pdu_drawn = r.it_power - r.ups_power;
        assert!(
            pdu_drawn >= -Power::from_watts(1e-6),
            "negative PDU draw at {}",
            r.time
        );
        assert!(
            r.ups_power <= r.it_power + Power::from_watts(1e-6),
            "UPS delivered more than the servers drew at {}",
            r.time
        );
    }
}

/// UPS energy is conserved: what the controller reports as delivered
/// matches the fleet's state-of-charge drop (modulo recharge and
/// efficiency).
#[test]
fn ups_energy_accounting_is_consistent() {
    let spec = spec();
    let config = ControllerConfig {
        recharge_when_quiet: false,
        ..ControllerConfig::default()
    };
    let mut ctl = SprintController::new(&spec, &config, Box::new(Greedy));
    let full = ctl.ups().deliverable();
    for (_, demand) in ms_trace::paper_default().iter() {
        ctl.step(demand, Seconds::new(1.0));
    }
    let (_, delivered, _) = ctl.energy_split();
    let drained = full - ctl.ups().deliverable();
    // Delivered energy can never exceed what left the batteries.
    assert!(delivered <= drained + Energy::from_joules(1.0));
    // And the books must be close: everything drained was delivered.
    assert!(
        (drained - delivered).as_joules().abs() < full.as_joules() * 0.01,
        "drained {drained} vs delivered {delivered}"
    );
}

/// The TES heat ledger matches the tank's state of charge.
#[test]
fn tes_heat_accounting_is_consistent() {
    let spec = spec();
    let config = ControllerConfig {
        recharge_when_quiet: false,
        ..ControllerConfig::default()
    };
    let mut ctl = SprintController::new(&spec, &config, Box::new(Greedy));
    let full = ctl.tes().stored();
    for (_, demand) in ms_trace::paper_default().iter() {
        ctl.step(demand, Seconds::new(1.0));
    }
    let tes_heat = ctl.tes_heat_total();
    let drained = full - ctl.tes().stored();
    assert!(
        (drained - tes_heat).as_joules().abs() < 1.0,
        "TES drained {drained} vs ledger {tes_heat}"
    );
}

/// The served demand never exceeds the core capacity actually active, and
/// the degree never exceeds the strategy bound.
#[test]
fn served_and_degree_respect_their_bounds() {
    let bound = Ratio::new(2.5);
    let spec = spec();
    let config = ControllerConfig::default();
    let mut ctl = SprintController::new(&spec, &config, Box::new(FixedBound::new(bound)));
    for (_, demand) in ms_trace::paper_default().iter() {
        let r = ctl.step(demand, Seconds::new(1.0));
        let capacity = spec.server().capacity_at_cores(r.cores);
        assert!(r.served <= capacity + 1e-9);
        assert!(r.served <= r.demand + 1e-9);
        assert!(r.degree <= bound, "degree {} above bound", r.degree);
    }
}

/// Breaker thermal safety: across the whole run, every breaker's remaining
/// trip time at the applied load stayed at or above the configured reserve
/// (sampled via trip progress never reaching 1).
#[test]
fn breakers_never_approach_a_trip() {
    let spec = spec();
    let config = ControllerConfig::default();
    let mut ctl = SprintController::new(&spec, &config, Box::new(Greedy));
    for (_, demand) in ms_trace::paper_default().iter() {
        ctl.step(demand, Seconds::new(1.0));
        let status = ctl.topology().status();
        assert!(!status.any_tripped);
        assert!(status.dc_progress < 1.0);
        assert!(status.max_pdu_progress < 1.0);
    }
}

/// Room temperature stays strictly below the threshold for the whole run.
#[test]
fn room_stays_below_threshold() {
    let spec = spec();
    let config = ControllerConfig::default();
    let mut ctl = SprintController::new(&spec, &config, Box::new(Greedy));
    for (_, demand) in ms_trace::paper_default().iter() {
        let r = ctl.step(demand, Seconds::new(1.0));
        assert!(
            ctl.room().temperature() < ctl.room().threshold(),
            "room at {} at time {}",
            ctl.room().temperature(),
            r.time
        );
    }
}

/// Scale invariance: the same trace on a 2-PDU and an 8-PDU facility
/// yields identical normalized performance (the property that justifies
/// building the Oracle table at unit-cell scale).
#[test]
fn normalized_performance_is_scale_invariant() {
    let trace = ms_trace::paper_default();
    let mut results = Vec::new();
    for pdus in [2usize, 8] {
        let s = DataCenterSpec::paper_default().with_scale(pdus, 200);
        let config = ControllerConfig::default();
        let mut ctl = SprintController::new(&s, &config, Box::new(Greedy));
        let mut served_sum = 0.0;
        for (_, demand) in trace.iter() {
            served_sum += ctl.step(demand, Seconds::new(1.0)).served;
        }
        results.push(served_sum);
    }
    // Whole-server UPS offload granularity differs slightly across fleet
    // sizes, so invariance holds to ~0.1%, not to machine precision.
    assert!(
        (results[0] - results[1]).abs() < results[0] * 1e-3,
        "scale variance: {results:?}"
    );
}
