//! Property-based end-to-end tests: random burst profiles and facility
//! configurations must never violate the controller's safety contract.

use datacenter_sprinting::core::{ControllerConfig, FixedBound, Greedy, SprintController};
use datacenter_sprinting::power::DataCenterSpec;
use datacenter_sprinting::units::{Charge, Ratio, Seconds};
use proptest::prelude::*;

fn random_trace() -> impl Strategy<Value = Vec<f64>> {
    // Piecewise demand: a handful of segments, each a level in [0, 4.5]
    // held for up to 3 minutes.
    prop::collection::vec((0.0..4.5f64, 10usize..180), 2..12).prop_map(|segments| {
        segments
            .into_iter()
            .flat_map(|(level, len)| std::iter::repeat_n(level, len))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The safety contract: no trips, no overheating, serving at least
    /// min(demand, 1.0), for arbitrary demand profiles.
    #[test]
    fn controller_is_safe_on_random_demand(samples in random_trace()) {
        let spec = DataCenterSpec::paper_default().with_scale(2, 200);
        let config = ControllerConfig::default();
        let mut ctl = SprintController::new(&spec, &config, Box::new(Greedy));
        for &demand in &samples {
            let r = ctl.step(demand, Seconds::new(1.0));
            prop_assert!(!r.tripped, "tripped at {}", r.time);
            prop_assert!(!r.overheated, "overheated at {}", r.time);
            prop_assert!(r.served >= demand.min(1.0) - 1e-9,
                "served {} of demand {}", r.served, demand);
        }
    }

    /// Under-provisioned facilities (0-20% headroom, any battery size)
    /// keep the same contract.
    #[test]
    fn controller_is_safe_across_configurations(
        headroom in 0.0..20.0f64,
        battery_ah in 0.05..2.0f64,
        demand in 1.1..4.5f64,
    ) {
        let spec = DataCenterSpec::paper_default()
            .with_scale(2, 200)
            .with_dc_headroom(Ratio::from_percent(headroom));
        let config = ControllerConfig {
            ups_rating: Charge::from_amp_hours(battery_ah),
            ..ControllerConfig::default()
        };
        let mut ctl = SprintController::new(&spec, &config, Box::new(Greedy));
        for _ in 0..600 {
            let r = ctl.step(demand, Seconds::new(1.0));
            prop_assert!(!r.tripped && !r.overheated);
            prop_assert!(r.served >= 1.0 - 1e-9);
        }
    }

    /// A tighter degree bound never increases instantaneous power draw.
    #[test]
    fn tighter_bounds_draw_no_more_power(
        demand in 1.5..4.0f64,
        lo in 1.0..2.0f64,
        hi_extra in 0.5..2.0f64,
    ) {
        let spec = DataCenterSpec::paper_default().with_scale(2, 200);
        let config = ControllerConfig::default();
        let mk = |bound: f64| {
            SprintController::new(
                &spec,
                &config,
                Box::new(FixedBound::new(Ratio::new(bound))),
            )
        };
        let mut tight = mk(lo);
        let mut loose = mk(lo + hi_extra);
        for _ in 0..120 {
            let a = tight.step(demand, Seconds::new(1.0));
            let b = loose.step(demand, Seconds::new(1.0));
            prop_assert!(a.it_power <= b.it_power + datacenter_sprinting::units::Power::from_watts(1e-6));
            prop_assert!(a.served <= b.served + 1e-9);
        }
    }
}
