//! Serde round-trips for the configuration and result types a deployment
//! would persist (configs in version control, results in run archives).

use datacenter_sprinting::core::{ControllerConfig, StepRecord, UpperBoundTable};
use datacenter_sprinting::power::DataCenterSpec;
use datacenter_sprinting::sim::{run, Scenario};
use datacenter_sprinting::units::{Power, Ratio, Seconds};
use datacenter_sprinting::workload::{yahoo_trace, Trace};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn controller_config_round_trips() {
    let config = ControllerConfig::default();
    let back = round_trip(&config);
    assert_eq!(config, back);
}

#[test]
fn facility_spec_round_trips() {
    let spec = DataCenterSpec::paper_default().with_dc_headroom(Ratio::from_percent(15.0));
    let back = round_trip(&spec);
    assert_eq!(spec, back);
    assert_eq!(back.dc_rated(), spec.dc_rated());
}

#[test]
fn traces_round_trip() {
    let trace = yahoo_trace::with_burst(3, 3.2, Seconds::from_minutes(5.0));
    let back: Trace = round_trip(&trace);
    assert_eq!(trace, back);
}

#[test]
fn upper_bound_table_round_trips() {
    let table = UpperBoundTable::new(
        vec![5.0, 15.0],
        vec![2.0, 4.0],
        vec![
            Ratio::new(4.0),
            Ratio::new(3.5),
            Ratio::new(2.0),
            Ratio::new(2.5),
        ],
    )
    .unwrap();
    let back = round_trip(&table);
    assert_eq!(table, back);
    assert_eq!(
        back.lookup(Seconds::from_minutes(10.0), 3.0),
        table.lookup(Seconds::from_minutes(10.0), 3.0)
    );
}

#[test]
fn step_records_round_trip_through_a_run() {
    let scenario = Scenario::new(
        DataCenterSpec::paper_default().with_scale(2, 200),
        ControllerConfig::default(),
        yahoo_trace::with_burst(1, 2.5, Seconds::from_minutes(2.0)),
    );
    let result = run(&scenario, Box::new(datacenter_sprinting::core::Greedy));
    let records: Vec<StepRecord> = round_trip(&result.records);
    assert_eq!(records, result.records);
}

#[test]
fn quantities_round_trip_transparently() {
    // Quantities serialize as bare numbers (serde(transparent)).
    let p = Power::from_kilowatts(13.75);
    assert_eq!(serde_json::to_string(&p).unwrap(), "13750.0");
    assert_eq!(round_trip(&p), p);
}
